"""Zero-stall async checkpointing over the spill tier.

Checkpointing must not stall the step: SuperOffload's engine streams
optimizer-state snapshots to NVMe while training continues, and commits
each snapshot atomically so a crash at *any* instant — including halfway
through the metadata write — leaves a consistent checkpoint to resume
from.  :class:`AsyncCheckpointer` builds that on :class:`SpillArena`:

* **Capture** — the only synchronous cost.  Each plane is memcpy'd into
  a per-slot capture buffer under a ``ckpt_capture`` span; training may
  mutate the live planes the moment :meth:`save` returns.
* **Stream** — the capture buffers are written to the slot's plane files
  by the spill arena's background I/O worker, overlapped with the next
  training steps.
* **Commit** — a task queued *behind* the data writes on the same FIFO
  worker fsyncs the plane files, writes ``manifest.json.tmp``, fsyncs
  it, atomically renames it over ``manifest.json``, and fsyncs the
  directory.  The manifest is the commit point: a reader either sees the
  previous complete checkpoint or the new one, never a torn state.
* **Ping-pong slots** — consecutive saves alternate between two on-disk
  slots (by save sequence, *not* step parity — steps 2 and 4 must not
  share a slot), and a resumed checkpointer starts on the slot the
  committed manifest does **not** point at.  Together with the FIFO
  write stream — slot data writes only start after the prior save's
  manifest rename has run — in-flight writes never touch the slot the
  current manifest points at.  :meth:`save` waits for the slot's
  previous commit before reusing it (a ``spill_wait`` that only bites
  when the disk is more than two checkpoints behind).

``python -m repro.training.checkpoint`` runs a small checkpointed
data-parallel training job and resumes it from the latest manifest if
one exists — the crash-consistency tests SIGKILL that process at random
points and assert the resumed run finishes bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.errors import TensorValidationError
from repro.tensors.pinned import PinnedBufferPool
from repro.tensors.spill import SpillArena, SpillTicket

MANIFEST = "manifest.json"
_MAGIC = "repro-checkpoint"
_VERSION = 1


@dataclass(frozen=True)
class CheckpointInfo:
    """One committed checkpoint, as named by the manifest."""

    step: int
    slot: int
    planes: Dict[str, int]
    meta: Dict[str, object]
    chunk_bytes: int


def read_manifest(directory: "str | os.PathLike[str]") -> Optional[CheckpointInfo]:
    """The latest committed checkpoint under ``directory``, or ``None``.

    Only ``manifest.json`` is consulted — a leftover ``.tmp`` from a
    crash mid-commit is ignored, which is exactly the atomicity rule.
    """
    path = Path(directory) / MANIFEST
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    if doc.get("checkpoint") != _MAGIC or doc.get("version") != _VERSION:
        raise TensorValidationError(f"unrecognised manifest at {path}")
    return CheckpointInfo(
        step=int(doc["step"]),
        slot=int(doc["slot"]),
        planes={str(k): int(v) for k, v in doc["planes"].items()},
        meta=dict(doc["meta"]),
        chunk_bytes=int(doc["chunk_bytes"]),
    )


class AsyncCheckpointer:
    """Double-slot asynchronous checkpoint writer over a spill arena.

    Args:
        directory: checkpoint directory; holds ``data/`` (the slot plane
            files) and ``manifest.json``.
        planes: mapping of plane name to fp32 element count — the fixed
            snapshot schema (e.g. ``master``, ``m``, ``v``).
        chunk_bytes: spill extent size; when resuming over an existing
            manifest its recorded extent size wins, so plane files keep
            their layout across runs.
        pinned_pool: optional pinned pool for the spill staging ring.
        telemetry: span/metric sink (no-op by default).
    """

    def __init__(
        self,
        directory: "str | os.PathLike[str]",
        planes: Dict[str, int],
        chunk_bytes: Optional[int] = None,
        pinned_pool: Optional[PinnedBufferPool] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        existing = read_manifest(self.directory)
        if existing is not None:
            if existing.planes != {k: int(v) for k, v in planes.items()}:
                raise TensorValidationError(
                    "checkpoint directory holds an incompatible schema: "
                    f"{existing.planes} vs {dict(planes)}"
                )
            chunk_bytes = existing.chunk_bytes
        self._planes = {str(k): int(v) for k, v in planes.items()}
        spill_planes = {
            f"s{slot}.{name}": n
            for slot in (0, 1)
            for name, n in self._planes.items()
        }
        self._spill = SpillArena(
            self.directory / "data",
            spill_planes,
            chunk_bytes=chunk_bytes,
            pinned_pool=pinned_pool,
            telemetry=self._telemetry,
        )
        # Persistent per-slot capture buffers: the memcpy target of
        # save() and the stability guarantee for the async writes.
        self._capture = {
            slot: {
                name: np.empty(n, dtype=np.float32)
                for name, n in self._planes.items()
            }
            for slot in (0, 1)
        }
        self._commits: Dict[int, Optional[SpillTicket]] = {0: None, 1: None}
        # Next slot to write: never the one the committed manifest points
        # at, alternating per save thereafter.  Keyed on save order, not
        # step parity — a fixed checkpoint cadence with an even period
        # would otherwise aim every save at the committed slot.
        self._next_slot = 0 if existing is None else 1 - existing.slot
        self.saves_total = 0
        self._closed = False

    @property
    def chunk_bytes(self) -> int:
        """The spill extent size in effect (stable across resumes)."""
        return self._spill.chunk_bytes

    @property
    def spill(self) -> SpillArena:
        """The underlying spill arena (telemetry lives on it)."""
        return self._spill

    def save(
        self,
        step: int,
        planes: Dict[str, np.ndarray],
        meta: Optional[Dict[str, object]] = None,
    ) -> SpillTicket:
        """Snapshot ``planes`` asynchronously; return the commit ticket.

        The live arrays are free to change once this returns: the
        capture memcpy is the entire synchronous window.  The ticket
        completes when the manifest rename has landed; callers that need
        durability *now* (end of run) wait on it.
        """
        if step < 0:
            raise ValueError("step must be non-negative")
        if set(planes) != set(self._planes):
            raise TensorValidationError(
                f"snapshot planes {sorted(planes)} != schema "
                f"{sorted(self._planes)}"
            )
        slot = self._next_slot
        previous = self._commits[slot]
        if previous is not None:
            previous.wait()  # slot must be committed before reuse
        tracer = self._telemetry.tracer
        with tracer.span("ckpt_capture", category="checkpoint",
                         step=step, slot=slot):
            for name, arr in planes.items():
                cap = self._capture[slot][name]
                flat = np.asarray(arr, dtype=np.float32).reshape(-1)
                if flat.size != cap.size:
                    raise TensorValidationError(
                        f"plane {name!r} holds {flat.size} elements, "
                        f"schema says {cap.size}"
                    )
                cap[...] = flat
        for name in self._planes:
            cap = self._capture[slot][name]
            self._spill.write_async(f"s{slot}.{name}", 0, cap.size, cap)
        manifest = {
            "checkpoint": _MAGIC,
            "version": _VERSION,
            "step": int(step),
            "slot": slot,
            "planes": self._planes,
            "meta": dict(meta or {}),
            "chunk_bytes": self._spill.chunk_bytes,
        }
        ticket = self._spill.submit_task(lambda: self._commit(slot, manifest))
        self._commits[slot] = ticket
        # Flip only once the save is fully enqueued: a validation error
        # above leaves the slot unburned for the retry.
        self._next_slot = 1 - slot
        self.saves_total += 1
        return ticket

    def _commit(self, slot: int, manifest: Dict[str, object]) -> None:
        """Runs on the I/O thread, strictly after the slot's data writes."""
        with self._telemetry.tracer.span(
            "checkpoint", category="checkpoint",
            step=manifest["step"], slot=slot,
        ):
            for name in self._planes:
                self._spill.fsync(f"s{slot}.{name}")
            tmp = self.directory / (MANIFEST + ".tmp")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, json.dumps(manifest, sort_keys=True).encode())
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, self.directory / MANIFEST)
            dfd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)
            self._telemetry.metrics.counter("checkpoints_committed").inc()

    def latest(self) -> Optional[CheckpointInfo]:
        """The latest committed checkpoint (manifest contents)."""
        return read_manifest(self.directory)

    def restore(self, planes: Dict[str, np.ndarray]) -> CheckpointInfo:
        """Read the committed slot's planes into ``planes`` (in place).

        Raises if no checkpoint has been committed.
        """
        info = self.latest()
        if info is None:
            raise FileNotFoundError(
                f"no committed checkpoint under {self.directory}"
            )
        if set(planes) != set(self._planes):
            raise TensorValidationError(
                f"restore planes {sorted(planes)} != schema "
                f"{sorted(self._planes)}"
            )
        for name, arr in planes.items():
            n = self._planes[name]
            if arr.size != n:
                raise TensorValidationError(
                    f"plane {name!r} holds {arr.size} elements, "
                    f"schema says {n}"
                )
            if arr.dtype == np.float32 and arr.flags["C_CONTIGUOUS"]:
                self._spill.read(f"s{info.slot}.{name}", 0, n,
                                 arr.reshape(-1))
            else:
                # reshape(-1) on a non-contiguous array is a copy: the
                # spill read would fill the copy and leave the caller's
                # array untouched.  Stage through a temp and assign back.
                tmp = np.empty(n, dtype=np.float32)
                self._spill.read(f"s{info.slot}.{name}", 0, n, tmp)
                arr[...] = tmp.reshape(arr.shape)
        return info

    def wait(self) -> None:
        """Block until every issued checkpoint has committed."""
        for slot in (0, 1):
            ticket = self._commits[slot]
            if ticket is not None:
                ticket.wait()

    def close(self) -> None:
        """Wait for outstanding commits and release the spill arena."""
        if self._closed:
            return
        self._closed = True
        self.wait()
        self._spill.close()

    def __enter__(self) -> "AsyncCheckpointer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- checkpointed training runner (CLI, tests, SIGKILL child) ------------


def run_checkpointed(
    checkpoint_dir: "str | os.PathLike[str]",
    iterations: int,
    batch: int = 8,
    world_size: int = 2,
    every: int = 1,
    seed: int = 0,
    offload: str = "none",
    spill_dir: "str | None" = None,
    out: "str | None" = None,
):
    """Run (or resume) a small checkpointed DP training job.

    If ``checkpoint_dir`` holds a committed manifest the run resumes
    from it and continues to ``iterations`` total steps; otherwise it
    starts fresh.  On completion the final master plane and loss are
    written to ``out`` (``.npz``) when given, so an interrupted-then-
    resumed run can be compared bit for bit against an uninterrupted
    one.  Returns the trainer (checkpoints flushed, spill closed).
    """
    from repro.numeric.transformer import TransformerParams
    from repro.training.dp_trainer import DataParallelTrainer

    spec = TransformerParams(
        vocab=61, max_seq=16, hidden=24, n_layers=2, n_heads=4
    )
    trainer = DataParallelTrainer(
        spec, world_size, seed=seed,
        offload=offload, spill_dir=spill_dir,
    )
    trainer.attach_checkpointer(checkpoint_dir, every=every)
    trainer.resume_latest()
    reports = trainer.train_to(iterations, batch, seed=seed)
    trainer.finish_checkpoints()
    trainer.optimizer.release_staging()
    trainer.optimizer.close_spill()
    if out is not None:
        np.savez(
            out,
            master=trainer.arena.flat,
            iteration=np.int64(trainer.iteration),
            loss=np.float64(reports[-1].loss if reports else np.nan),
        )
    return trainer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.training.checkpoint",
        description="run/resume a checkpointed DP training job",
    )
    parser.add_argument("--dir", required=True, help="checkpoint directory")
    parser.add_argument("--iters", type=int, default=8)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--world", type=int, default=2)
    parser.add_argument("--every", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--offload", choices=("none", "disk"),
                        default="none")
    parser.add_argument("--spill-dir", default=None)
    parser.add_argument("--out", default=None,
                        help="write final master plane to this .npz")
    args = parser.parse_args(argv)
    trainer = run_checkpointed(
        args.dir, args.iters, batch=args.batch, world_size=args.world,
        every=args.every, seed=args.seed, offload=args.offload,
        spill_dir=args.spill_dir, out=args.out,
    )
    print(f"checkpointed run complete: iteration {trainer.iteration}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
