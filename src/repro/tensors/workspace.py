"""Activation workspace: shape/dtype-keyed buffer reuse for the model step.

The optimizer half of the substrate became allocation-free in PRs 2-3
(flat arena planes + fused chunk kernels with per-thread scratch).  The
*model* half still allocated every activation, cache, and backward
temporary fresh each step — per layer, per micro-batch.  An
:class:`ActivationWorkspace` closes that gap: it hands out exclusive
buffers keyed by ``(shape, dtype)`` from a free list, and recycles every
buffer handed out during a step back to the free list when the next step
begins.  After one warm-up step, a model whose shapes are stable requests
exactly the buffers the previous step returned, so steady-state workspace
allocations are zero — the property ``tests/tensors/test_workspace.py``
and the ``model_step`` bench section assert.

Lifetime protocol (what makes reuse safe):

* :meth:`take` transfers exclusive ownership of a buffer to the caller.
  Two takes never alias, even for identical keys.
* :meth:`give` returns a buffer early, inside the step — the ping-pong
  move that lets layer ``i+1``'s backward temporaries reuse layer
  ``i``'s bytes.
* :meth:`new_step` recycles everything still outstanding.  The model
  calls it at the top of ``forward``, so forward caches stay valid
  through the paired ``backward`` and die at the *next* forward.
  Corollary: buffers taken during step ``N`` must not be read after step
  ``N+1`` begins.  Returned *gradients* therefore never come from the
  workspace — callers accumulate them across micro-batches and ranks.

Telemetry: ``workspace_bytes_reused`` / ``workspace_bytes_allocated``
counters and a ``workspace_peak_bytes`` gauge (the high-water footprint —
pooled plus outstanding; buffers are retained, so this equals total bytes
ever allocated).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np

from repro.telemetry import NULL_TELEMETRY, Telemetry

Key = Tuple[Tuple[int, ...], str]


class ActivationWorkspace:
    """A free-list allocator for step-scoped activation buffers.

    Args:
        telemetry: sink for the reuse/allocation counters (no-op by
            default).

    Attributes:
        alloc_count: buffers ever allocated (steady state: stops moving).
        reuse_count: takes served from the free list.
        total_bytes: bytes held by the workspace (pooled + outstanding);
            also the peak footprint, since buffers are never released to
            the heap.
    """

    def __init__(self, telemetry: Telemetry = NULL_TELEMETRY):
        self._telemetry = telemetry
        self._free: Dict[Key, List[np.ndarray]] = {}
        self._live: Dict[int, np.ndarray] = {}
        self._lock = threading.Lock()
        self.alloc_count = 0
        self.reuse_count = 0
        self.total_bytes = 0

    # -- allocation -----------------------------------------------------

    @staticmethod
    def _key(shape: Tuple[int, ...], dtype) -> Key:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def take(self, shape, dtype=np.float32) -> np.ndarray:
        """An exclusive, uninitialized buffer of ``shape``/``dtype``.

        Served from the free list when a matching buffer exists (the
        steady state); allocated otherwise.  Contents are garbage — the
        caller fully overwrites (use ``fill(0)`` for accumulators).
        """
        key = self._key(tuple(shape), dtype)
        with self._lock:
            stack = self._free.get(key)
            if stack:
                buf = stack.pop()
                self.reuse_count += 1
                self._telemetry.metrics.counter(
                    "workspace_bytes_reused").inc(buf.nbytes)
            else:
                buf = np.empty(key[0], dtype=np.dtype(key[1]))
                self.alloc_count += 1
                self.total_bytes += buf.nbytes
                self._telemetry.metrics.counter(
                    "workspace_bytes_allocated").inc(buf.nbytes)
                self._telemetry.metrics.gauge(
                    "workspace_peak_bytes").set(self.total_bytes)
            self._live[id(buf)] = buf
        return buf

    def give(self, buf: np.ndarray) -> None:
        """Return ``buf`` to the free list before the step ends.

        The caller must hold no further references that it will read —
        the very next :meth:`take` of the same key may hand the bytes
        out again.  Buffers the workspace did not issue are ignored (so
        call sites can run with plain ``np.empty`` fallbacks unchanged).
        """
        with self._lock:
            owned = self._live.pop(id(buf), None)
            if owned is None:
                return
            self._free.setdefault(
                self._key(owned.shape, owned.dtype), []).append(owned)

    def new_step(self) -> None:
        """Recycle every outstanding buffer (called at each forward)."""
        with self._lock:
            for buf in self._live.values():
                self._free.setdefault(
                    self._key(buf.shape, buf.dtype), []).append(buf)
            self._live.clear()

    # -- introspection --------------------------------------------------

    @property
    def peak_bytes(self) -> int:
        """High-water footprint in bytes (== ``total_bytes``; retained)."""
        return self.total_bytes

    @property
    def live_bytes(self) -> int:
        """Bytes currently checked out (outstanding takes)."""
        with self._lock:
            return sum(b.nbytes for b in self._live.values())

    @property
    def pooled_bytes(self) -> int:
        """Bytes sitting in the free list, ready for reuse."""
        with self._lock:
            return sum(
                b.nbytes for stack in self._free.values() for b in stack
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActivationWorkspace(allocs={self.alloc_count}, "
            f"reuses={self.reuse_count}, bytes={self.total_bytes})"
        )


def take_like(ws: "ActivationWorkspace | None", shape, dtype) -> np.ndarray:
    """``ws.take`` when a workspace is threaded, ``np.empty`` otherwise.

    The layer kernels call this so every call site works identically with
    and without a workspace (the no-workspace path is the seed behavior:
    a fresh allocation per intermediate).
    """
    if ws is None:
        return np.empty(tuple(shape), dtype=np.dtype(dtype))
    return ws.take(shape, dtype)
