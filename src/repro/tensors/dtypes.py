"""Numeric dtype registry used throughout the reproduction.

Mixed-precision training in the paper moves tensors between FP16 (compute /
transfer format under the classic ZeRO-Offload greedy edge-cut) and FP32
(optimizer master format, and the transfer format SuperOffload prefers on
superchips, §4.5).  The registry keeps itemsizes and numpy equivalents in
one place so byte accounting is consistent across the simulator and the
numeric substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DType:
    """A tensor element type.

    Attributes:
        name: canonical short name, e.g. ``"fp16"``.
        itemsize: bytes per element.
        np_dtype: the numpy dtype string used by the numeric substrate.
        is_float: whether the type participates in mixed-precision casting.
    """

    name: str
    itemsize: int
    np_dtype: str
    is_float: bool = True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    @property
    def numpy(self) -> np.dtype:
        """The numpy dtype object for this element type."""
        return np.dtype(self.np_dtype)


FP64 = DType("fp64", 8, "float64")
FP32 = DType("fp32", 4, "float32")
# numpy has no native bfloat16; the numeric substrate emulates bf16 by
# truncating fp32 mantissas (see repro.numeric.lowprec), so np_dtype is fp32.
BF16 = DType("bf16", 2, "float32")
FP16 = DType("fp16", 2, "float16")
INT32 = DType("int32", 4, "int32", is_float=False)
INT8 = DType("int8", 1, "int8", is_float=False)

_REGISTRY = {d.name: d for d in (FP64, FP32, BF16, FP16, INT32, INT8)}


def dtype_by_name(name: str) -> DType:
    """Look up a registered dtype by its canonical name.

    Raises:
        KeyError: if ``name`` is not a registered dtype.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
