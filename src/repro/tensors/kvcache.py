"""Paged KV-cache for the streaming inference path.

Serving keeps one K/V history per (session, layer); a thousand ragged
sessions malloc'd individually would fragment the heap and make the
memory budget unauditable.  This module stores histories as fixed-size
**pages** — ``kv.page_tokens`` tokens each, one buffer of shape
``(2, heads, page_tokens, head_dim)`` per page — served from an
:class:`~repro.tensors.workspace.ActivationWorkspace`.  Every page shares
one (shape, dtype) key, so retired sessions' pages are recycled into new
sessions via the workspace free list and steady-state serving performs
zero allocations once the page pool is warm.

Capacity is a hard page budget (``max_pages``).  Under pressure the
least-recently-touched resident page is evicted: with a
:class:`~repro.tensors.spill.SpillArena` backing tier attached the page's
bytes survive to disk and are transparently restored on next touch
(``kv_pages_evicted`` / ``kv_pages_restored`` counters,
``kv_bytes_resident`` gauge); without one, eviction would lose live
context, so the cache refuses admission instead
(:class:`KVCacheFull` — the scheduler's backpressure signal).

:func:`paged_attention` is the decode-side consumer: an online-softmax
sweep over a session's page list (the same running max/sum rescaling as
:mod:`repro.numeric.flash`), so attention never needs the history
contiguous — or even fully resident until touched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import tune
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.spill import SpillArena
from repro.tensors.workspace import ActivationWorkspace
from repro.tune.registry import default as _registry_default

#: Authored default tokens-per-page; live value resolved via
#: ``tune.value("kv.page_tokens", ...)`` at cache construction.
PAGE_TOKENS = _registry_default("kv.page_tokens")


class KVCacheFull(RuntimeError):
    """Raised when a page is needed, the budget is exhausted, and no
    spill tier exists to evict into.  Admission control should prevent
    this (see :meth:`PagedKVCache.can_admit`)."""


@dataclass(eq=False)
class _Page:
    """One fixed-size KV page (identity-hashed; lives in the LRU)."""

    session: int
    layer: int
    index: int                        # ordinal within the (session, layer) run
    buf: Optional[np.ndarray] = None  # (2, heads, page_tokens, head_dim)
    slot: Optional[int] = None        # spill slot while evicted
    pinned: bool = field(default=False, repr=False)

    @property
    def resident(self) -> bool:
        return self.buf is not None


class PagedKVCache:
    """Fixed-page KV storage with LRU eviction and optional disk spill.

    Args:
        n_layers, n_heads, head_dim: attention geometry of the model.
        page_tokens: tokens per page; defaults to the tuned
            ``kv.page_tokens``.
        max_pages: resident page budget (``None`` = unbounded).
        workspace: page allocator; a private one is created if omitted.
            The cache owns its pages across steps, so **never** call
            ``new_step()`` on this workspace — pages are returned only
            through :meth:`release` and eviction.
        spill: optional spill backing.  Pass a directory path to let the
            cache build its own arena, sized ``spill_pages`` pages.
        spill_pages: spill-tier capacity in pages (default: 4x
            ``max_pages``; required if ``max_pages`` is None).
        telemetry: sink for the eviction counters and residency gauge.
    """

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        head_dim: int,
        page_tokens: Optional[int] = None,
        max_pages: Optional[int] = None,
        workspace: Optional[ActivationWorkspace] = None,
        spill: Optional[str] = None,
        spill_pages: Optional[int] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.n_layers = n_layers
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.page_tokens = (
            page_tokens if page_tokens is not None
            else tune.value("kv.page_tokens", PAGE_TOKENS)
        )
        self.max_pages = max_pages
        self.workspace = workspace if workspace is not None \
            else ActivationWorkspace()
        self.telemetry = telemetry
        self._page_shape = (2, n_heads, self.page_tokens, head_dim)
        self._page_elems = 2 * n_heads * self.page_tokens * head_dim
        self._page_bytes = self._page_elems * 4
        self._pages: Dict[Tuple[int, int], List[_Page]] = {}
        self._tokens: Dict[Tuple[int, int], int] = {}  # per (session, layer)
        self._live: Dict[int, None] = {}    # session registry, FIFO order
        self._lru: Dict[_Page, None] = {}   # insertion-ordered: LRU first
        self._resident = 0
        self._arena: Optional[SpillArena] = None
        self._free_slots: List[int] = []
        if spill is not None:
            if spill_pages is None:
                if max_pages is None:
                    raise ValueError(
                        "spill_pages is required when max_pages is None"
                    )
                spill_pages = 4 * max_pages
            self._arena = SpillArena(
                spill, {"kv": spill_pages * self._page_elems},
                telemetry=telemetry,
            )
            self._free_slots = list(range(spill_pages))

    # -- bookkeeping ----------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return self._resident

    @property
    def resident_bytes(self) -> int:
        return self._resident * self._page_bytes

    def sessions(self) -> Tuple[int, ...]:
        return tuple(self._live)

    def tokens(self, session: int, layer: int = 0) -> int:
        """Tokens appended for ``(session, layer)``."""
        return self._tokens.get((session, layer), 0)

    def pages_for(self, tokens: int) -> int:
        """Pages one layer of a ``tokens``-long session occupies."""
        return (tokens + self.page_tokens - 1) // self.page_tokens

    @property
    def bounded(self) -> bool:
        """True when admission must respect ``max_pages`` (no spill
        tier to absorb overflow)."""
        return self._arena is None and self.max_pages is not None

    def can_admit(self, tokens: int) -> bool:
        """Whether a new ``tokens``-long prompt fits without overflow.

        With a spill tier attached the answer is always yes (pages can
        be evicted to disk); without one, admission must keep the total
        footprint of *live* sessions under ``max_pages``.  Note this
        counts pages *currently held* — schedulers admitting several
        growing sessions must reserve each one's full footprint
        themselves (see ``ContinuousBatchingScheduler._admit``).
        """
        if not self.bounded:
            return True
        held = sum(len(run) for run in self._pages.values())
        return held + self.pages_for(tokens) * self.n_layers \
            <= self.max_pages

    def _touch(self, page: _Page) -> None:
        self._lru.pop(page, None)
        self._lru[page] = None

    def _gauge(self) -> None:
        self.telemetry.metrics.gauge("kv_bytes_resident").set(
            self.resident_bytes
        )

    # -- eviction / restore ---------------------------------------------

    def _evict_one(self) -> None:
        victim = next(
            (p for p in self._lru if p.resident and not p.pinned), None
        )
        if victim is None:
            raise KVCacheFull(
                f"all {self._resident} resident pages are pinned"
            )
        if self._arena is None:
            raise KVCacheFull(
                f"page budget {self.max_pages} exhausted and no spill "
                "tier attached (admission control should gate on "
                "can_admit)"
            )
        if not self._free_slots:
            raise KVCacheFull("spill tier is out of slots")
        with self.telemetry.tracer.span("kv_evict", category="kvcache"):
            slot = self._free_slots.pop()
            lo = slot * self._page_elems
            self._arena.write(
                "kv", lo, lo + self._page_elems, victim.buf.reshape(-1)
            )
            victim.slot = slot
            self.workspace.give(victim.buf)
            victim.buf = None
            self._resident -= 1
        self.telemetry.metrics.counter("kv_pages_evicted").inc()
        self._gauge()

    def _take_page_buf(self) -> np.ndarray:
        if self.max_pages is not None:
            while self._resident >= self.max_pages:
                self._evict_one()
        buf = self.workspace.take(self._page_shape, np.float32)
        self._resident += 1
        self._gauge()
        return buf

    def _ensure_resident(self, page: _Page) -> None:
        self._touch(page)
        if page.resident:
            return
        with self.telemetry.tracer.span("kv_restore", category="kvcache"):
            buf = self._take_page_buf()
            lo = page.slot * self._page_elems
            self._arena.read("kv", lo, lo + self._page_elems,
                             buf.reshape(-1))
            self._free_slots.append(page.slot)
            page.slot = None
            page.buf = buf
        self.telemetry.metrics.counter("kv_pages_restored").inc()

    # -- append / view ---------------------------------------------------

    def append(
        self, session: int, layer: int, k: np.ndarray, v: np.ndarray
    ) -> None:
        """Append ``t`` new tokens of K/V for one (session, layer).

        ``k`` and ``v`` are ``(heads, t, head_dim)``.  Every layer of a
        session must append the same number of tokens per step; the
        session token count advances when layer 0 appends.
        """
        if k.shape != v.shape or k.shape[0] != self.n_heads \
                or k.shape[2] != self.head_dim:
            raise ValueError(f"bad KV shape {k.shape}")
        run = self._pages.setdefault((session, layer), [])
        done = self._tokens.get((session, layer), 0)
        t = k.shape[1]
        try:
            pos = 0
            while pos < t:
                page_idx, offset = divmod(done + pos, self.page_tokens)
                if page_idx == len(run):
                    run.append(_Page(session, layer, page_idx))
                page = run[page_idx]
                # Pin only the page being written: earlier pages of this
                # same append are already safe on disk if evicted.
                page.pinned = True
                try:
                    if page.buf is None and page.slot is None:
                        page.buf = self._take_page_buf()
                        self._touch(page)
                    else:
                        self._ensure_resident(page)
                    step = min(self.page_tokens - offset, t - pos)
                    page.buf[0, :, offset:offset + step] = \
                        k[:, pos:pos + step]
                    page.buf[1, :, offset:offset + step] = \
                        v[:, pos:pos + step]
                    pos += step
                finally:
                    page.pinned = False
        except KVCacheFull:
            # Roll back pages this append allocated so a rejected
            # admission leaves no footprint behind.
            keep = self.pages_for(done)
            for page in run[keep:]:
                self._lru.pop(page, None)
                if page.resident:
                    self.workspace.give(page.buf)
                    page.buf = None
                    self._resident -= 1
                elif page.slot is not None:
                    self._free_slots.append(page.slot)
                    page.slot = None
            del run[keep:]
            if not run:
                self._pages.pop((session, layer), None)
            self._gauge()
            raise
        self._tokens[(session, layer)] = done + t
        self._live.setdefault(session, None)

    def view(
        self, session: int, layer: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Resident (k, v) views per page, trimmed to valid tokens.

        Touching a spilled page restores it from disk first.  Views stay
        valid until the next operation that can evict (append on a full
        cache, another view).
        """
        run = self._pages.get((session, layer), [])
        total = self._tokens.get((session, layer), 0)
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for page in run:
            page.pinned = True
        try:
            for page in run:
                valid = min(
                    self.page_tokens,
                    total - page.index * self.page_tokens,
                )
                if valid <= 0:
                    continue
                self._ensure_resident(page)
                out.append(
                    (page.buf[0, :, :valid], page.buf[1, :, :valid])
                )
        finally:
            for page in run:
                page.pinned = False
        return out

    def iter_pages(self, session: int, layer: int):
        """Yield (k, v) page views lazily, restoring one page at a time.

        Unlike :meth:`view`, only the *yielded* page is guaranteed
        resident — earlier pages may be evicted as the sweep advances —
        so a history larger than the resident budget can still be
        attended (the online-softmax consumer reads each page exactly
        once, in order).
        """
        run = self._pages.get((session, layer), [])
        total = self._tokens.get((session, layer), 0)
        for page in run:
            valid = min(
                self.page_tokens, total - page.index * self.page_tokens
            )
            if valid <= 0:
                continue
            page.pinned = True
            try:
                self._ensure_resident(page)
                yield (page.buf[0, :, :valid], page.buf[1, :, :valid])
            finally:
                page.pinned = False

    def release(self, session: int) -> None:
        """Retire a session: recycle its pages and spill slots."""
        for layer in range(self.n_layers):
            run = self._pages.pop((session, layer), [])
            for page in run:
                self._lru.pop(page, None)
                if page.resident:
                    self.workspace.give(page.buf)
                    page.buf = None
                    self._resident -= 1
                elif page.slot is not None:
                    self._free_slots.append(page.slot)
                    page.slot = None
            self._tokens.pop((session, layer), None)
        self._live.pop(session, None)
        self._gauge()

    def close(self) -> None:
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "PagedKVCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def paged_attention(
    q: np.ndarray,
    pages: List[Tuple[np.ndarray, np.ndarray]],
    past_len: int,
) -> np.ndarray:
    """Causal attention of new queries against a paged K/V history.

    Online-softmax sweep (running max / running sum, same rescaling as
    :mod:`repro.numeric.flash`) over the page list, so the history is
    consumed page-by-page and never concatenated.  Query row ``i``
    (global position ``past_len + i``) sees keys ``0 .. past_len + i``.

    Args:
        q: ``(heads, tq, head_dim)`` new-token queries.
        pages: iterable of ``(k, v)`` views — a :meth:`PagedKVCache.view`
            list or the lazy :meth:`PagedKVCache.iter_pages` generator;
            token counts must sum to ``past_len + tq``.
        past_len: tokens already in the history before this step's
            append.

    Returns:
        ``(heads, tq, head_dim)`` fp32 attention output.
    """
    heads, tq, d = q.shape
    scale = np.float32(1.0 / math.sqrt(d))
    fill = np.float32(np.finfo(np.float32).min / 2)
    m = np.full((heads, tq), fill, dtype=np.float32)
    l = np.zeros((heads, tq), dtype=np.float32)
    acc = np.zeros((heads, tq, d), dtype=np.float32)
    base = 0
    rows = past_len + np.arange(tq, dtype=np.int64)[:, None]
    for k, v in pages:
        pt = k.shape[1]
        s = np.matmul(q, k.transpose(0, 2, 1)) * scale
        cols = base + np.arange(pt, dtype=np.int64)[None, :]
        masked = cols > rows
        if masked.any():
            s = np.where(masked[None, :, :], fill, s)
        block_max = s.max(axis=-1)
        m_new = np.maximum(m, block_max)
        alpha = np.exp(m - m_new)
        p = np.exp(s - m_new[..., None])
        l = l * alpha + p.sum(axis=-1)
        acc = acc * alpha[..., None] + np.matmul(p, v)
        m = m_new
        base += pt
    if base != past_len + tq:
        raise ValueError(
            f"pages hold {base} tokens, expected {past_len + tq}"
        )
    return acc / l[..., None]
