"""Capacity-checked device memory pools.

Every simulated device (Hopper HBM, Grace LPDDR5, remote-node DDR) owns a
:class:`MemoryPool`.  Placement policies allocate tensor bytes from pools and
the pool enforces the same hard failure a CUDA allocator would; the
max-model-scale experiments (Fig. 13) rely on this to find each system's
feasibility frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.tensors.errors import DeviceOutOfMemoryError


@dataclass(frozen=True)
class Allocation:
    """A live reservation inside a :class:`MemoryPool`."""

    pool: "MemoryPool"
    tag: str
    nbytes: int

    def free(self) -> None:
        """Release this reservation back to the pool."""
        self.pool.free(self)


class MemoryPool:
    """A fixed-capacity byte pool with peak-usage tracking.

    The pool intentionally models capacity only, not fragmentation: modern
    caching allocators (and the paper's workloads, which allocate a small
    number of very large contiguous buffers) make fragmentation a second-order
    effect for this study.

    Args:
        device: device name the pool belongs to (used in error messages).
        capacity: total bytes available.
        reserved: bytes permanently set aside (CUDA context, framework
            overheads).  Defaults to zero; node topologies set realistic
            values.
    """

    def __init__(self, device: str, capacity: int, reserved: int = 0):
        if capacity < 0 or reserved < 0:
            raise ValueError("capacity and reserved must be non-negative")
        if reserved > capacity:
            raise ValueError("reserved exceeds capacity")
        self.device = device
        self.capacity = capacity
        self.reserved = reserved
        self._used = reserved
        self._peak = reserved
        self._live: Dict[int, Allocation] = {}

    @property
    def used(self) -> int:
        """Bytes currently allocated (including the reserved floor)."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity - self._used

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`used` over the pool's lifetime."""
        return self._peak

    def allocate(self, nbytes: int, tag: str = "") -> Allocation:
        """Reserve ``nbytes``; raise :class:`DeviceOutOfMemoryError` if it
        does not fit."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(
                self.device, nbytes, self.free_bytes, self.capacity
            )
        alloc = Allocation(self, tag, nbytes)
        self._live[id(alloc)] = alloc
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return alloc

    def can_fit(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would currently succeed."""
        return 0 <= nbytes <= self.free_bytes

    def free(self, alloc: Allocation) -> None:
        """Release a live allocation; double-free raises ``KeyError``."""
        if id(alloc) not in self._live:
            raise KeyError(f"allocation {alloc.tag!r} is not live in {self.device}")
        del self._live[id(alloc)]
        self._used -= alloc.nbytes

    def live_allocations(self) -> Iterator[Allocation]:
        """Iterate over currently live allocations."""
        return iter(self._live.values())

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current usage."""
        self._peak = self._used

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryPool({self.device!r}, used={self._used}/{self.capacity}, "
            f"peak={self._peak})"
        )
