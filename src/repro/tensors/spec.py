"""Tensor metadata descriptors.

A :class:`TensorSpec` carries everything the placement policies and the
simulator need to know about a tensor — shape, dtype, device, pinned-ness —
without materializing element data.  The numeric substrate materializes real
numpy arrays separately; specs are the lingua franca between the two halves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

from repro.tensors.dtypes import DType


@dataclass(frozen=True)
class TensorSpec:
    """Describes a tensor without holding its data.

    Attributes:
        name: a unique, human-readable identifier (e.g. ``"layer3.mlp.w1"``).
        shape: tensor dimensions.
        dtype: element type.
        device: placement, e.g. ``"gpu:0"`` or ``"cpu:0"``.
        pinned: whether the backing host memory is page-locked.  Only
            meaningful for CPU-resident tensors; pinned transfers run at DMA
            bandwidth while pageable transfers pay the staging penalty the
            paper observes for the transfer-then-cast path (§4.5).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType
    device: str = "cpu:0"
    pinned: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if any(d < 0 for d in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")

    @property
    def numel(self) -> int:
        """Number of elements."""
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Total size in bytes."""
        return self.numel * self.dtype.itemsize

    def to(self, device: str, pinned: bool | None = None) -> "TensorSpec":
        """Return a copy placed on ``device``.

        Pinned-ness is preserved unless explicitly overridden; moving to a
        GPU clears the pinned flag since pinning only applies to host memory.
        """
        if device.startswith("gpu"):
            new_pinned = False
        elif pinned is None:
            new_pinned = self.pinned
        else:
            new_pinned = pinned
        return replace(self, device=device, pinned=new_pinned)

    def cast(self, dtype: DType) -> "TensorSpec":
        """Return a copy with a different element type (same shape/device)."""
        return replace(self, dtype=dtype)

    def is_on_gpu(self) -> bool:
        """Whether the spec currently lives in GPU memory."""
        return self.device.startswith("gpu")
