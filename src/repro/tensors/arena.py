"""Zero-copy flat parameter arena.

The paper's CPU-side machinery (GraceAdam §4.6, ZeRO-style sharding §4.7)
wins by walking one contiguous buffer instead of a forest of per-tensor
allocations — the flattened fp32 partition layout ZeRO-Offload introduced.
:class:`FlatArena` is that layout for the numeric substrate: a set of
named fp32 tensors laid out back-to-back as reshaped views into a single
1-D buffer, padded at the tail so the flat length divides the world size.

The aliasing invariant is the whole point: mutating a named view mutates
the flat buffer and vice versa, so

* optimizers update parameters, moments, and masters in place with single
  flat vectorized passes (no flatten/scatter-back per step);
* ``ZeroShardedAdam`` hands each rank a shard *view* — reduce-scatter
  output is consumed where it lands and all-gather writes are no-ops when
  the destination already aliases the arena;
* STV rollback snapshots/restores a parameter bucket with one
  arena-range ``memcpy`` instead of per-tensor copies;
* mixed-precision casts (fp32 master -> fp16 model copy) are one flat
  ``astype`` over the buffer.

Every byte that crosses the arena boundary is accounted to one of two
telemetry counters: ``arena_bytes_copied`` (data physically moved) and
``arena_bytes_aliased`` (data served as views where the dict-of-tensors
design would have copied).  Steady-state training steps should show the
copied counter flat — that is the measurable claim ``repro bench``
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.tensors.errors import TensorValidationError, ensure_dense_fp32
from repro.telemetry import NULL_TELEMETRY, Telemetry

Shape = Tuple[int, ...]


def _size_of(shape: Shape) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n


def _owner(array: np.ndarray) -> np.ndarray:
    """Walk the ``.base`` chain to the array that owns the memory."""
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


def _byte_offset(view: np.ndarray, owner: np.ndarray) -> int:
    return (
        view.__array_interface__["data"][0]
        - owner.__array_interface__["data"][0]
    )


@dataclass(frozen=True)
class ArenaLayout:
    """The placement plan: where each named tensor lives in the flat span.

    ``total`` is the padded flat length (a multiple of the world size the
    arena was planned for); ``unpadded`` is the sum of tensor sizes.  The
    pad region ``[unpadded, total)`` belongs to no tensor and is kept
    zero by every well-behaved writer.
    """

    names: Tuple[str, ...]
    offsets: Tuple[int, ...]
    shapes: Tuple[Shape, ...]
    total: int
    unpadded: int

    @classmethod
    def plan(
        cls, shapes: Mapping[str, Sequence[int]], world_size: int = 1
    ) -> "ArenaLayout":
        """Lay out ``shapes`` back-to-back, padding to ``world_size``."""
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if not shapes:
            raise TensorValidationError("an arena needs at least one tensor")
        names = []
        offsets = []
        shp = []
        cursor = 0
        for name, shape in shapes.items():
            names.append(name)
            offsets.append(cursor)
            clean = tuple(int(d) for d in shape)
            shp.append(clean)
            cursor += _size_of(clean)
        total = -(-cursor // world_size) * world_size
        return cls(tuple(names), tuple(offsets), tuple(shp), total, cursor)

    def aliases(self, other: "ArenaLayout") -> bool:
        """True when two layouts describe the same tensor placement.

        ``total`` is deliberately excluded: a world-padded arena and an
        exact-fit arena over the same tensors still alias name-for-name.
        """
        return (
            self.names == other.names
            and self.offsets == other.offsets
            and self.shapes == other.shapes
            and self.unpadded == other.unpadded
        )


class FlatArena:
    """Named fp32 tensors as views into one contiguous padded buffer.

    Construct via :meth:`zeros` (fresh storage), :meth:`adopt` (copy a
    params dict in once and rebind its values to arena views), or
    :meth:`wrap` (zero-copy recognition of arrays that already form an
    arena).  ``arena.views[name]`` and ``arena.flat`` alias the same
    memory by construction.
    """

    __slots__ = ("layout", "world_size", "dtype", "flat", "views",
                 "_offsets", "_telemetry")

    def __init__(
        self,
        layout: ArenaLayout,
        world_size: int = 1,
        dtype: np.dtype = np.float32,
        telemetry: Telemetry = NULL_TELEMETRY,
        _flat: Optional[np.ndarray] = None,
        _views: Optional[Dict[str, np.ndarray]] = None,
    ):
        if layout.total % world_size != 0:
            raise ValueError(
                f"layout total {layout.total} does not divide "
                f"world_size {world_size}"
            )
        self.layout = layout
        self.world_size = world_size
        self.dtype = np.dtype(dtype)
        self._telemetry = telemetry
        self._offsets: Dict[str, Tuple[int, int]] = {
            name: (off, _size_of(shape))
            for name, off, shape in zip(layout.names, layout.offsets,
                                        layout.shapes)
        }
        if _flat is None:
            self.flat = np.zeros(layout.total, dtype=self.dtype)
            self.views = {
                name: self.flat[off:off + size].reshape(shape)
                for (name, (off, size)), shape in zip(self._offsets.items(),
                                                      layout.shapes)
            }
        else:
            self.flat = _flat
            self.views = dict(_views) if _views is not None else {
                name: self.flat[off:off + size].reshape(shape)
                for (name, (off, size)), shape in zip(self._offsets.items(),
                                                      layout.shapes)
            }

    # -- constructors ---------------------------------------------------

    @classmethod
    def zeros(
        cls,
        shapes: Mapping[str, Sequence[int]],
        world_size: int = 1,
        dtype: np.dtype = np.float32,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> "FlatArena":
        """A zero-filled arena laid out for ``shapes``."""
        layout = ArenaLayout.plan(shapes, world_size)
        return cls(layout, world_size, dtype, telemetry)

    @classmethod
    def wrap(
        cls,
        tensors: Mapping[str, np.ndarray],
        world_size: int = 1,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> Optional["FlatArena"]:
        """Recognise an existing arena without copying, else ``None``.

        Succeeds only when every value is a dense fp32 view into one
        common owning buffer, packed back-to-back from byte offset 0 in
        dict order, and the owner's length is exactly the padded total
        for ``world_size``.  The exact-fit requirement is what keeps a
        random slice-of-something dict from being mistaken for an arena.
        The caller's arrays become the arena's views, so identity (not
        just aliasing) is preserved.
        """
        arrays = list(tensors.values())
        if not arrays:
            return None
        for a in arrays:
            if (not isinstance(a, np.ndarray) or a.dtype != np.float32
                    or not a.flags.c_contiguous):
                return None
        owner = _owner(arrays[0])
        if owner.dtype != np.float32 or not owner.flags.c_contiguous:
            return None
        cursor = 0
        itemsize = owner.itemsize
        for a in arrays:
            if _owner(a) is not owner:
                return None
            if _byte_offset(a, owner) != cursor * itemsize:
                return None
            cursor += a.size
        total = -(-cursor // world_size) * world_size
        if owner.size != total:
            return None
        layout = ArenaLayout.plan(
            {name: np.shape(a) for name, a in tensors.items()}, world_size
        )
        return cls(layout, world_size, np.float32, telemetry,
                   _flat=owner.reshape(-1), _views=dict(tensors))

    @classmethod
    def adopt(
        cls,
        params: Dict[str, np.ndarray],
        world_size: int = 1,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> "FlatArena":
        """Move ``params`` into an arena and rebind the dict to its views.

        If the dict already forms an arena (e.g. it was adopted by an
        earlier layer), this is a zero-copy :meth:`wrap`.  Otherwise each
        tensor is validated, copied into fresh flat storage exactly once
        (counted as ``arena_bytes_copied``), and ``params[name]`` is
        replaced with the arena view so every existing holder of the
        *dict* sees arena-backed tensors from then on.
        """
        existing = cls.wrap(params, world_size, telemetry)
        if existing is not None:
            return existing
        for name, arr in params.items():
            ensure_dense_fp32(name, arr)
        arena = cls.zeros(
            {name: arr.shape for name, arr in params.items()},
            world_size, np.float32, telemetry,
        )
        for name in list(params):
            arena.views[name][...] = params[name]
            params[name] = arena.views[name]
        arena.note_copy(arena.layout.unpadded * arena.dtype.itemsize)
        return arena

    def like(self, dtype: np.dtype = np.float32) -> "FlatArena":
        """A fresh zeroed arena with this layout (optionally retyped).

        The workhorse for parallel planes over the same parameter space:
        Adam moments, gradient accumulators, fp16 model copies.
        """
        return FlatArena(self.layout, self.world_size, dtype,
                         self._telemetry)

    # -- telemetry ------------------------------------------------------

    def set_telemetry(self, telemetry: Telemetry) -> None:
        self._telemetry = telemetry

    def note_copy(self, nbytes: int) -> None:
        """Account ``nbytes`` physically moved across the arena boundary."""
        self._telemetry.metrics.counter("arena_bytes_copied").inc(nbytes)

    def note_alias(self, nbytes: int) -> None:
        """Account ``nbytes`` served as views instead of copies."""
        self._telemetry.metrics.counter("arena_bytes_aliased").inc(nbytes)

    # -- addressing -----------------------------------------------------

    def shard(self, rank: int) -> np.ndarray:
        """Rank ``rank``'s contiguous 1/world_size slice of the buffer."""
        if not 0 <= rank < self.world_size:
            raise IndexError(
                f"rank {rank} out of range for world_size {self.world_size}"
            )
        n = self.layout.total // self.world_size
        return self.flat[rank * n:(rank + 1) * n]

    def range_of(self, names: Iterable[str]) -> Optional[Tuple[int, int]]:
        """The contiguous flat span covering ``names``, or ``None``.

        Returns ``(lo, hi)`` only when the named tensors tile the span
        with no holes, which is what makes a one-memcpy snapshot legal.
        """
        try:
            spans = sorted(self._offsets[name] for name in names)
        except KeyError:
            return None
        if not spans:
            return None
        lo = spans[0][0]
        cursor = lo
        for off, size in spans:
            if off != cursor:
                return None
            cursor += size
        return lo, cursor

    def flat_of(
        self, tensors: Mapping[str, np.ndarray]
    ) -> Optional[np.ndarray]:
        """The flat buffer behind ``tensors`` if they alias this layout.

        Zero-copy fast path for gradient dicts that are themselves
        arena-backed: when the dict's values form an arena whose layout
        aliases ours, return its flat buffer directly (counted as
        ``arena_bytes_aliased``); otherwise return ``None`` and let the
        caller fall back to a counted copy.
        """
        other = FlatArena.wrap(tensors, self.world_size)
        if other is None or not other.layout.aliases(self.layout):
            return None
        self.note_alias(other.layout.unpadded * other.flat.itemsize)
        return other.flat

    def fill_from(self, tensors: Mapping[str, np.ndarray]) -> None:
        """Copy a full set of named tensors into the arena (counted).

        Values may be any dtype/array-like broadcastable-by-exact-shape;
        they are cast to the arena dtype on write.  Raises
        :class:`TensorValidationError` on unknown/missing names or shape
        mismatches.
        """
        if set(tensors) != set(self._offsets):
            missing = sorted(set(self._offsets) - set(tensors))
            unknown = sorted(set(tensors) - set(self._offsets))
            raise TensorValidationError(
                f"fill_from needs the exact tensor set: "
                f"missing {missing}, unknown {unknown}"
            )
        for name, value in tensors.items():
            view = self.views[name]
            arr = np.asarray(value)
            if arr.shape != view.shape:
                raise TensorValidationError(
                    f"{name!r} has shape {arr.shape}, expected {view.shape}"
                )
            view[...] = arr
        self.note_copy(self.layout.unpadded * self.dtype.itemsize)

    # -- snapshot / restore ---------------------------------------------

    def snapshot(self, lo: int = 0, hi: Optional[int] = None) -> np.ndarray:
        """Copy out ``flat[lo:hi]`` (counted as bytes copied)."""
        if hi is None:
            hi = self.layout.total
        buf = self.flat[lo:hi].copy()
        self.note_copy(buf.nbytes)
        return buf

    def restore(self, buf: np.ndarray, lo: int = 0) -> None:
        """Copy ``buf`` back into ``flat[lo:lo+len(buf)]`` (counted)."""
        self.flat[lo:lo + buf.size] = buf
        self.note_copy(buf.nbytes)

    # -- introspection --------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.flat.nbytes

    def __contains__(self, name: str) -> bool:
        return name in self._offsets

    def __len__(self) -> int:
        return len(self.layout.names)

    def __repr__(self) -> str:
        return (
            f"FlatArena({len(self)} tensors, total={self.layout.total}, "
            f"unpadded={self.layout.unpadded}, world={self.world_size}, "
            f"dtype={self.dtype.name})"
        )
