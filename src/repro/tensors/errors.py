"""Exceptions raised by the tensor substrate."""

from __future__ import annotations


class DeviceOutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds a device memory pool's capacity.

    Mirrors a CUDA OOM: the max-model-scale experiments (Fig. 13) are
    bisection searches over model size that treat this exception as the
    infeasibility signal.
    """

    def __init__(self, device: str, requested: int, free: int, capacity: int):
        self.device = device
        self.requested = requested
        self.free = free
        self.capacity = capacity
        super().__init__(
            f"{device}: out of memory allocating {requested} bytes "
            f"(free {free} of {capacity})"
        )


class PinnedPoolExhaustedError(RuntimeError):
    """Raised when a pinned staging buffer cannot be reserved."""
