"""Exceptions raised by the tensor substrate."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class TensorValidationError(TypeError, ValueError):
    """An array handed to the substrate violates its entry contract.

    Inherits from both :class:`TypeError` and :class:`ValueError` so call
    sites that historically raised either keep their exception contracts
    while gaining one precise type to catch at the optimizer/arena
    boundaries.
    """


def ensure_dense_fp32(
    name: str,
    array: object,
    shape: Sequence[int] | Tuple[int, ...] | None = None,
) -> np.ndarray:
    """Validate that ``array`` is a dense (C-contiguous) fp32 ndarray.

    The numeric hot paths (optimizers, arenas, sharded steps) assume flat
    fp32 memory; anything else used to fail deep inside numpy with an
    opaque broadcast/dtype error.  This is the single entry-point check
    that turns those into a clear :class:`TensorValidationError`.

    Args:
        name: tensor name used in the error message.
        array: candidate array.
        shape: expected shape, if the boundary pins one.

    Returns:
        The validated array, unchanged.
    """
    if not isinstance(array, np.ndarray):
        raise TensorValidationError(
            f"{name!r} must be a numpy ndarray, got {type(array).__name__}"
        )
    if array.dtype != np.float32:
        raise TensorValidationError(
            f"{name!r} must be fp32, got dtype {array.dtype}"
        )
    if not array.flags.c_contiguous:
        raise TensorValidationError(
            f"{name!r} must be C-contiguous; pass np.ascontiguousarray(...) "
            "if the producer emits strided views"
        )
    if shape is not None and tuple(array.shape) != tuple(shape):
        raise TensorValidationError(
            f"{name!r} has shape {tuple(array.shape)}, expected {tuple(shape)}"
        )
    return array


class DeviceOutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds a device memory pool's capacity.

    Mirrors a CUDA OOM: the max-model-scale experiments (Fig. 13) are
    bisection searches over model size that treat this exception as the
    infeasibility signal.
    """

    def __init__(self, device: str, requested: int, free: int, capacity: int):
        self.device = device
        self.requested = requested
        self.free = free
        self.capacity = capacity
        super().__init__(
            f"{device}: out of memory allocating {requested} bytes "
            f"(free {free} of {capacity})"
        )


class PinnedPoolExhaustedError(RuntimeError):
    """Raised when a pinned staging buffer cannot be reserved."""
