"""Pinned (page-locked) host staging buffers.

§4.5 of the paper observes that a transfer-then-cast path on the Grace CPU
implicitly allocates an *unpinned* temporary buffer, forcing the C2C transfer
through pageable memory at a fraction of DMA bandwidth.  The pinned pool
models the fixed set of page-locked staging buffers an offloading engine
keeps around; requests that exceed the pool fall back to pageable transfers.
"""

from __future__ import annotations

from repro.tensors.errors import PinnedPoolExhaustedError
from repro.tensors.memory import Allocation, MemoryPool


class PinnedBufferPool:
    """A bounded pool of page-locked host memory.

    Args:
        capacity: total pinned bytes the engine registered at startup.
        host_pool: optional backing host :class:`MemoryPool`; pinned bytes
            also consume host DRAM, so reservations are mirrored there when
            a backing pool is provided.
    """

    def __init__(self, capacity: int, host_pool: MemoryPool | None = None):
        self._pool = MemoryPool("pinned", capacity)
        self._host_pool = host_pool
        self._host_allocs: dict[int, Allocation] = {}

    @property
    def capacity(self) -> int:
        """Total pinned bytes available to the engine."""
        return self._pool.capacity

    @property
    def free_bytes(self) -> int:
        """Pinned bytes currently unreserved."""
        return self._pool.free_bytes

    def try_reserve(self, nbytes: int, tag: str = "") -> Allocation | None:
        """Reserve a pinned staging buffer, or return ``None`` if the pool
        cannot satisfy the request (caller falls back to pageable)."""
        if not self._pool.can_fit(nbytes):
            return None
        if self._host_pool is not None and not self._host_pool.can_fit(nbytes):
            return None
        alloc = self._pool.allocate(nbytes, tag)
        if self._host_pool is not None:
            self._host_allocs[id(alloc)] = self._host_pool.allocate(
                nbytes, f"pinned:{tag}"
            )
        return alloc

    def reserve(self, nbytes: int, tag: str = "") -> Allocation:
        """Reserve a pinned buffer; raise if the pool is exhausted."""
        alloc = self.try_reserve(nbytes, tag)
        if alloc is None:
            raise PinnedPoolExhaustedError(
                f"cannot pin {nbytes} bytes (free {self.free_bytes} of "
                f"{self.capacity})"
            )
        return alloc

    def release(self, alloc: Allocation) -> None:
        """Return a pinned buffer to the pool."""
        self._pool.free(alloc)
        host = self._host_allocs.pop(id(alloc), None)
        if host is not None:
            host.free()
