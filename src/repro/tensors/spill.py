"""NVMe/disk spill tier for fp32 optimizer-state planes (§2.2).

ZeRO-Infinity parks optimizer states on node-local NVMe and streams them
through pinned staging buffers; §2.2 of the paper describes that tier as
the one below HBM+DDR in the offload hierarchy.  :class:`SpillArena` is
the real-execution counterpart of the simulator's NVMe model
(``systems/zero_infinity.py``): named fp32 planes live in per-plane files
chunked into fixed-size *extents*, and every read/write moves through a
double-buffered staging ring serviced by one background I/O worker.

Design points mirrored from real offload engines:

* **Direct I/O** — plane files are opened ``O_DIRECT`` where the
  filesystem supports it, so transfers are device DMA that genuinely
  overlaps with compute instead of page-cache memcpys that compete with
  it for the same cores.  Each plane file is sized to a whole number of
  ``chunk_bytes`` extents, every I/O is split at extent boundaries, the
  staging ring is page-aligned (mmap-backed), and unaligned range tails
  are handled by sector-granular read-modify-write within the extent.
  Filesystems without ``O_DIRECT`` (tmpfs, some overlays) fall back to
  buffered I/O with the same aligned access pattern
  (``chunk_bytes`` is clamped to a multiple of the 4 KiB sector size).
* **Pinned double buffering** — the worker stages each extent through one
  of two ``chunk_bytes`` buffers reserved from a
  :class:`~repro.tensors.pinned.PinnedBufferPool` (§4.5); when the pool
  cannot satisfy the reservation the ring silently falls back to pageable
  buffers, exactly like the transfer engine it models.
* **Split read/write streams** — reads and writes run on separate I/O
  worker threads over separate bounded queues (``spill.writer_queue``
  tunable; a full queue applies backpressure to the producer).  Writes
  are bandwidth work that only has to complete by the end of the step;
  reads are latency-critical prefetches the compute loop blocks on.  One
  FIFO queue would park every prefetch behind the write backlog, so the
  streams are independent — the same reason real offload engines keep
  multiple AIO submission rings.  Ordering guarantees: reads are FIFO
  among reads, writes and tasks are FIFO among writes (which is what
  makes the checkpoint commit atomic), and there is **no cross-stream
  ordering** — a caller that reads a range with a write still in flight
  must wait the write's ticket first (the synchronous :meth:`read` /
  :meth:`write` helpers do this implicitly by completing before they
  return).
* **Telemetry** — ``spill_bytes_read`` / ``spill_bytes_written`` counters,
  a ``spill_wait_ms`` histogram for time the *caller* spent blocked on a
  ticket, and ``spill_read`` / ``spill_write`` spans recorded on the I/O
  thread (visible to the overlap audit, invisible to same-thread step
  attribution).

The caller owns buffer stability: the source of :meth:`write_async` and
the destination of :meth:`read_async` must stay untouched until the
returned ticket completes.  The slot discipline in the disk-offloaded
ZeRO step and the ping-pong checkpoint slots both provide this.
"""

from __future__ import annotations

import mmap
import os
import queue
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import tune
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.errors import TensorValidationError
from repro.tensors.pinned import PinnedBufferPool

#: O_DIRECT-style sector alignment floor; ``chunk_bytes`` is clamped to a
#: multiple of this so every extent starts at an aligned file offset.
SECTOR_BYTES = 4096

#: Authored default extent size (256 KiB), overridable via the
#: ``spill.chunk_bytes`` tunable.
DEFAULT_CHUNK_BYTES = 1 << 18

#: Authored default bound on the async I/O queue, overridable via the
#: ``spill.writer_queue`` tunable.
DEFAULT_QUEUE_BOUND = 16


class SpillTicket:
    """Completion handle for one asynchronous spill operation.

    Tickets are completed exactly once by the I/O worker; :meth:`wait`
    re-raises any exception the operation hit.  Time actually spent
    blocked is recorded in the owning arena's ``spill_wait_ms`` histogram
    and under a ``spill_wait`` span, so a fully-hidden transfer costs the
    step nothing and shows up as nothing.
    """

    __slots__ = ("_event", "_error", "_telemetry", "_op")

    def __init__(self, telemetry: Telemetry, op: str):
        self._event = threading.Event()
        self._error: Optional[BaseException] = None
        self._telemetry = telemetry
        self._op = op

    @property
    def done(self) -> bool:
        """Whether the operation has completed (successfully or not)."""
        return self._event.is_set()

    def _finish(self, error: Optional[BaseException] = None) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the operation completes; re-raise its error.

        Only an actual block is accounted: a ticket that is already done
        returns immediately without touching the histogram or tracer.
        """
        if not self._event.is_set():
            start = time.perf_counter()
            with self._telemetry.tracer.span(
                "spill_wait", category="stall", op=self._op
            ):
                finished = self._event.wait(timeout)
            self._telemetry.metrics.histogram("spill_wait_ms").observe(
                (time.perf_counter() - start) * 1e3
            )
            if not finished:
                raise TimeoutError(f"spill {self._op} did not complete")
        if self._error is not None:
            raise self._error


def wait_all(tickets: List[SpillTicket]) -> None:
    """Wait on ``tickets`` in order and clear the list in place."""
    for t in tickets:
        t.wait()
    tickets.clear()


class SpillArena:
    """Named fp32 planes spilled to extent-aligned files on disk.

    Args:
        directory: spill directory (created if missing); one file per
            plane plus whatever the caller stores beside them.
        planes: mapping of plane name to element count (fp32 elements).
            Files are created zero-filled, matching the zero-initialised
            Adam moments so a disk-offloaded optimizer starts bitwise
            identical to a resident one.
        chunk_bytes: extent size; ``None`` resolves the
            ``spill.chunk_bytes`` tunable.  Clamped to a multiple of
            :data:`SECTOR_BYTES`.
        queue_bound: async queue capacity; ``None`` resolves the
            ``spill.writer_queue`` tunable.
        pinned_pool: optional pinned pool backing the staging ring;
            exhaustion falls back to pageable staging.
        telemetry: span/metric sink (no-op by default).
    """

    def __init__(
        self,
        directory: "str | os.PathLike[str]",
        planes: Dict[str, int],
        chunk_bytes: Optional[int] = None,
        queue_bound: Optional[int] = None,
        pinned_pool: Optional[PinnedBufferPool] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if not planes:
            raise TensorValidationError("SpillArena needs at least one plane")
        for name, n in planes.items():
            if n < 1:
                raise TensorValidationError(
                    f"plane {name!r} must have >= 1 element, got {n}"
                )
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        chunk = chunk_bytes if chunk_bytes is not None else tune.value(
            "spill.chunk_bytes", DEFAULT_CHUNK_BYTES
        )
        if chunk < SECTOR_BYTES:
            chunk = SECTOR_BYTES
        chunk -= chunk % SECTOR_BYTES
        self.chunk_bytes = chunk
        bound = queue_bound if queue_bound is not None else tune.value(
            "spill.writer_queue", DEFAULT_QUEUE_BOUND
        )
        if bound < 1:
            raise TensorValidationError("queue_bound must be >= 1")
        self.queue_bound = bound
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._elements: Dict[str, int] = dict(planes)
        self._fds: Dict[str, int] = {}
        #: Whether plane files are open ``O_DIRECT`` (device DMA); falls
        #: back to buffered I/O where the filesystem refuses the flag.
        self.direct = False
        direct_flag = getattr(os, "O_DIRECT", 0)
        for name, n in planes.items():
            nbytes = n * 4
            extents = -(-nbytes // chunk)  # ceil
            path = self.directory / f"{name}.plane"
            fd = -1
            if direct_flag:
                try:
                    fd = os.open(
                        path, os.O_RDWR | os.O_CREAT | direct_flag, 0o644
                    )
                    self.direct = True
                except OSError:
                    fd = -1
                    direct_flag = 0  # one refusal disables it for the arena
                    self.direct = False
                    # Earlier planes already opened O_DIRECT must be
                    # reopened buffered: the fallback I/O path uses
                    # sector-unaligned offsets, which a direct fd
                    # rejects with EINVAL.  The arena is all-or-nothing.
                    for prev, prev_fd in list(self._fds.items()):
                        os.close(prev_fd)
                        self._fds[prev] = os.open(
                            self.directory / f"{prev}.plane",
                            os.O_RDWR, 0o644,
                        )
            if fd < 0:
                fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
            os.ftruncate(fd, extents * chunk)  # zero-filled, extent-sized
            self._fds[name] = fd
        # Double-buffered staging: one chunk-sized buffer per I/O stream
        # (reader and writer never share one), pinned when the pool can
        # supply them, pageable otherwise.  The buffers are mmap-backed
        # so they are page-aligned — a hard requirement for O_DIRECT
        # transfers, and the natural shape for the pinned transfer
        # buffers they model.
        self._pinned_pool = pinned_pool
        self._staging: List[np.ndarray] = []
        self._staging_maps: List[mmap.mmap] = []
        self._staging_allocs: List[object] = []
        self.staging_pinned: Tuple[bool, ...] = ()
        pinned_flags = []
        for i in range(2):
            alloc = None
            if pinned_pool is not None:
                alloc = pinned_pool.try_reserve(chunk, tag=f"spill_staging_{i}")
            if alloc is not None:
                self._staging_allocs.append(alloc)
            pinned_flags.append(alloc is not None)
            mm = mmap.mmap(-1, chunk)
            self._staging_maps.append(mm)
            self._staging.append(np.frombuffer(mm, dtype=np.uint8))
        self.staging_pinned = tuple(pinned_flags)
        #: Local mirrors of the telemetry counters (worker-thread updated;
        #: read them after a drain or ticket wait).
        self.bytes_read = 0
        self.bytes_written = 0
        self._read_queue: "queue.Queue[Optional[tuple]]" = queue.Queue(
            maxsize=bound
        )
        self._write_queue: "queue.Queue[Optional[tuple]]" = queue.Queue(
            maxsize=bound
        )
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._run, name="spill-read", daemon=True,
                args=(self._read_queue, 0),
            ),
            threading.Thread(
                target=self._run, name="spill-write", daemon=True,
                args=(self._write_queue, 1),
            ),
        ]
        for w in self._workers:
            w.start()

    # -- public API ------------------------------------------------------

    def plane_elements(self, name: str) -> int:
        """Element count of plane ``name``."""
        return self._elements[name]

    @property
    def plane_names(self) -> Tuple[str, ...]:
        """The plane names, in construction order."""
        return tuple(self._elements)

    def read_async(
        self, name: str, lo: int, hi: int, out: np.ndarray
    ) -> SpillTicket:
        """Read elements ``[lo, hi)`` of plane ``name`` into ``out``.

        ``out`` must stay untouched until the ticket completes.  Reads
        run on their own stream: a read of a range with a ``write_async``
        still in flight must wait that write's ticket first.
        """
        self._check(name, lo, hi, out, writable=True)
        return self._submit(
            ("read", name, lo, out[: hi - lo]), op="read",
            q=self._read_queue,
        )

    def write_async(
        self, name: str, lo: int, hi: int, src: np.ndarray
    ) -> SpillTicket:
        """Write ``src`` to elements ``[lo, hi)`` of plane ``name``.

        ``src`` must stay stable until the ticket completes.
        """
        self._check(name, lo, hi, src, writable=False)
        return self._submit(
            ("write", name, lo, src[: hi - lo]), op="write",
            q=self._write_queue,
        )

    def read(self, name: str, lo: int, hi: int, out: np.ndarray) -> None:
        """Synchronous read (enqueue + wait, preserving queue order)."""
        self.read_async(name, lo, hi, out).wait()

    def write(self, name: str, lo: int, hi: int, src: np.ndarray) -> None:
        """Synchronous write (enqueue + wait, preserving queue order)."""
        self.write_async(name, lo, hi, src).wait()

    def submit_task(self, fn: Callable[[], None]) -> SpillTicket:
        """Run ``fn`` on the write stream after all prior writes.

        The ordering guarantee is what makes an atomic checkpoint commit
        safe: a commit submitted after the slot's data writes observes
        those writes complete.  Tasks are *not* ordered against reads.
        """
        return self._submit(("task", fn), op="task", q=self._write_queue)

    def drain(self) -> None:
        """Block until every previously enqueued operation completed."""
        read_done = self._submit(
            ("task", lambda: None), op="task", q=self._read_queue
        )
        self.submit_task(lambda: None).wait()
        read_done.wait()

    def fsync(self, name: str) -> None:
        """Durably flush plane ``name`` (called on the I/O thread by
        checkpoint commits; callable from any thread)."""
        os.fsync(self._fds[name])

    def close(self) -> None:
        """Drain, stop the worker, close files, release pinned staging.

        Idempotent; plane files are left on disk for the caller (spill
        directories are usually temporary or checkpoint-owned).
        """
        if self._closed:
            return
        self._closed = True
        self._read_queue.put(None)
        self._write_queue.put(None)
        for w in self._workers:
            w.join()
        for fd in self._fds.values():
            os.close(fd)
        self._fds.clear()
        if self._pinned_pool is not None:
            for alloc in self._staging_allocs:
                self._pinned_pool.release(alloc)
        self._staging_allocs.clear()
        self._staging.clear()
        for mm in self._staging_maps:
            try:
                mm.close()
            except BufferError:  # a caller still holds a view; GC reclaims
                pass
        self._staging_maps.clear()

    def __enter__(self) -> "SpillArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ------------------------------------------------------

    def _submit(
        self, item: tuple, op: str, q: "queue.Queue[Optional[tuple]]"
    ) -> SpillTicket:
        if self._closed:
            raise TensorValidationError("SpillArena is closed")
        ticket = SpillTicket(self._telemetry, op)
        q.put(item + (ticket,))
        return ticket

    def _check(
        self, name: str, lo: int, hi: int, buf: np.ndarray, writable: bool
    ) -> None:
        if name not in self._elements:
            raise TensorValidationError(f"unknown spill plane {name!r}")
        n = self._elements[name]
        if not (0 <= lo < hi <= n):
            raise TensorValidationError(
                f"range [{lo}, {hi}) out of bounds for plane {name!r} "
                f"({n} elements)"
            )
        if buf.dtype != np.float32 or buf.ndim != 1:
            raise TensorValidationError(
                f"spill buffers must be 1-D float32, got {buf.dtype} "
                f"ndim={buf.ndim}"
            )
        if not buf.flags["C_CONTIGUOUS"]:
            raise TensorValidationError("spill buffers must be contiguous")
        if buf.shape[0] < hi - lo:
            raise TensorValidationError(
                f"buffer holds {buf.shape[0]} elements, range needs {hi - lo}"
            )
        if writable and not buf.flags["WRITEABLE"]:
            raise TensorValidationError("read destination is not writable")

    # -- I/O worker ------------------------------------------------------

    def _run(
        self, q: "queue.Queue[Optional[tuple]]", staging_slot: int
    ) -> None:
        while True:
            item = q.get()
            if item is None:
                return
            kind, ticket = item[0], item[-1]
            try:
                if kind == "read":
                    self._do_read(*item[1:-1], staging_slot)
                elif kind == "write":
                    self._do_write(*item[1:-1], staging_slot)
                else:
                    item[1]()
            except BaseException as exc:  # surfaced at ticket.wait()
                ticket._finish(exc)
            else:
                ticket._finish()

    def _extent_segments(self, offset: int, nbytes: int):
        """Yield (file_offset, length) pairs split at extent boundaries."""
        pos = 0
        while pos < nbytes:
            at = offset + pos
            seg = min(self.chunk_bytes - at % self.chunk_bytes, nbytes - pos)
            yield at, pos, seg
            pos += seg

    def _aligned_span(self, at: int, seg: int) -> Tuple[int, int]:
        """Sector-align ``[at, at + seg)`` outward, within its extent.

        Extents start and end on sector boundaries, so the rounded span
        never crosses the segment's extent and always fits one staging
        buffer.
        """
        a0 = at - at % SECTOR_BYTES
        end = at + seg
        a1 = end + (-end) % SECTOR_BYTES
        return a0, a1 - a0

    def _pread_exact(self, fd: int, stage: np.ndarray, at: int, name: str):
        got = os.preadv(fd, [memoryview(stage)], at)
        if got != stage.nbytes:
            raise OSError(
                f"short read on plane {name!r}: {got} of {stage.nbytes} bytes"
            )

    def _pwrite_exact(self, fd: int, stage: np.ndarray, at: int, name: str):
        put = os.pwritev(fd, [memoryview(stage)], at)
        if put != stage.nbytes:
            raise OSError(
                f"short write on plane {name!r}: {put} of {stage.nbytes} bytes"
            )

    def _do_read(self, name: str, lo: int, out: np.ndarray, slot: int) -> None:
        fd = self._fds[name]
        dst = np.frombuffer(memoryview(out), dtype=np.uint8)
        nbytes = dst.nbytes
        with self._telemetry.tracer.span(
            "spill_read", category="spill_io", plane=name, bytes=nbytes
        ):
            for at, pos, seg in self._extent_segments(lo * 4, nbytes):
                if self.direct:
                    # Direct I/O must move whole sectors from an aligned
                    # buffer: read the rounded span, copy out the middle.
                    a0, span = self._aligned_span(at, seg)
                    stage = self._staging[slot][:span]
                    self._pread_exact(fd, stage, a0, name)
                    dst[pos : pos + seg] = stage[at - a0 : at - a0 + seg]
                else:
                    stage = self._staging[slot][:seg]
                    self._pread_exact(fd, stage, at, name)
                    dst[pos : pos + seg] = stage
        self.bytes_read += nbytes
        self._telemetry.metrics.counter("spill_bytes_read").inc(nbytes)

    def _do_write(self, name: str, lo: int, src: np.ndarray, slot: int) -> None:
        fd = self._fds[name]
        raw = np.frombuffer(memoryview(src), dtype=np.uint8)
        nbytes = raw.nbytes
        with self._telemetry.tracer.span(
            "spill_write", category="spill_io", plane=name, bytes=nbytes
        ):
            for at, pos, seg in self._extent_segments(lo * 4, nbytes):
                if self.direct:
                    a0, span = self._aligned_span(at, seg)
                    stage = self._staging[slot][:span]
                    if span != seg:
                        # Unaligned head or tail: read-modify-write the
                        # rounded span so neighbouring plane bytes (file
                        # contents are always valid — zero-filled at
                        # creation) survive the sector-granular write.
                        # Safe against lost updates: this thread is the
                        # only writer and runs writes in FIFO order.
                        self._pread_exact(fd, stage, a0, name)
                    stage[at - a0 : at - a0 + seg] = raw[pos : pos + seg]
                    self._pwrite_exact(fd, stage, a0, name)
                else:
                    stage = self._staging[slot][:seg]
                    stage[...] = raw[pos : pos + seg]
                    self._pwrite_exact(fd, stage, at, name)
        self.bytes_written += nbytes
        self._telemetry.metrics.counter("spill_bytes_written").inc(nbytes)
