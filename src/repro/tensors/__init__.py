"""Virtual tensor substrate: dtypes, tensor specs, and device memory pools.

This package provides the bookkeeping layer that both the performance
simulator and the placement policies are built on.  A :class:`TensorSpec`
describes a tensor's shape, dtype, device placement, and pinned-ness without
holding element data; :class:`MemoryPool` gives every simulated device
capacity-checked allocation with out-of-memory semantics matching a real
allocator.
"""

from repro.tensors.arena import ArenaLayout, FlatArena
from repro.tensors.dtypes import DType, FP16, FP32, FP64, BF16, INT8, INT32, dtype_by_name
from repro.tensors.errors import (
    DeviceOutOfMemoryError,
    PinnedPoolExhaustedError,
    TensorValidationError,
    ensure_dense_fp32,
)
from repro.tensors.memory import Allocation, MemoryPool
from repro.tensors.pinned import PinnedBufferPool
from repro.tensors.spec import TensorSpec
from repro.tensors.spill import SpillArena, SpillTicket, wait_all
from repro.tensors.workspace import ActivationWorkspace, take_like

__all__ = [
    "ActivationWorkspace",
    "take_like",
    "ArenaLayout",
    "FlatArena",
    "TensorValidationError",
    "ensure_dense_fp32",
    "DType",
    "FP16",
    "FP32",
    "FP64",
    "BF16",
    "INT8",
    "INT32",
    "dtype_by_name",
    "TensorSpec",
    "Allocation",
    "MemoryPool",
    "PinnedBufferPool",
    "SpillArena",
    "SpillTicket",
    "wait_all",
    "DeviceOutOfMemoryError",
    "PinnedPoolExhaustedError",
]
