"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                 # available artifacts
    python -m repro fig10                # single-superchip throughput
    python -m repro table2               # the ablation breakdown
    python -m repro fig12 --chips 8      # Ulysses sequence lengths
    python -m repro trace --out /tmp/t   # telemetry: trace.json + events.jsonl
    python -m repro bench --out /tmp/b   # substrate perf: BENCH_substrate.json
    python -m repro bench --tuned        # A/B the host tuning profile
    python -m repro profile --out /tmp/p # step phases, overlap, utilization
    python -m repro checkpoint           # interrupt/resume round-trip
    python -m repro tune                 # autotune this host -> tune.json
    python -m repro serve --sessions 8   # int8 continuous-batching demo
    python -m repro all                  # everything (slow; skips file writers)

Every command prints the same table its benchmark harness asserts on; the
heavier sweeps accept ``--quick`` to trim the model-size grid.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.reporting import print_table


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.hardware import node_comparison_rows

    rows = node_comparison_rows()
    print_table(
        "Table 1 — node architecture comparison",
        ["arch", "CPU BW", "C<->GPU BW", "cores", "CPU TF", "GPU TF", "ratio"],
        [[r["arch"], r["cpu_bw_gbps"], r["cpu_gpu_bw_gbps"], r["cpu_cores"],
          r["cpu_tflops"], r["gpu_tflops"], r["gpu_cpu_flops_ratio"]]
         for r in rows],
    )


def _cmd_fig4(args: argparse.Namespace) -> None:
    from repro.models.config import MODEL_CONFIG_TABLE
    from repro.systems import RunSetting, ZeROOffload
    from repro.training.cluster import gh200_cluster

    rows = []
    for billions in (5, 15):
        setting = RunSetting(
            MODEL_CONFIG_TABLE[billions], gh200_cluster(1), global_batch=8
        )
        est = ZeROOffload().best_estimate(setting)
        rows.append([f"{billions}B", 100 * est.gpu_idle_fraction(),
                     est.iter_time])
    print_table(
        "Fig. 4 — ZeRO-Offload GPU idle time (paper: 40-50%)",
        ["model", "GPU idle %", "iter (s)"],
        rows,
    )


def _cmd_fig6(args: argparse.Namespace) -> None:
    from repro.core.policy import weight_flow_efficiency
    from repro.hardware.registry import HOPPER_H100

    batches = [1, 2, 4, 8, 16, 32]
    rows = []
    for bw in (32, 64, 128, 256, 450, 900):
        rows.append([f"{bw} GB/s"] + [
            weight_flow_efficiency(int(5e9), b, 1024, bw * 1e9,
                                   HOPPER_H100.achievable_flops)
            for b in batches
        ])
    print_table(
        "Fig. 6 — weight-flow efficiency (eqs. 1-3, seq 1024)",
        ["bandwidth \\ batch"] + [str(b) for b in batches],
        rows,
    )


def _cmd_fig7(args: argparse.Namespace) -> None:
    from repro.hardware.registry import c2c_bandwidth_model

    MiB = 1024**2
    model = c2c_bandwidth_model()
    rows = [[f"{s / MiB:g} MiB", bw]
            for s, bw in model.sweep([2**k * MiB for k in range(0, 11)])]
    print_table("Fig. 7 — C2C bandwidth vs message size",
                ["size", "GB/s"], rows)


def _cmd_fig9(args: argparse.Namespace) -> None:
    from repro.hardware.casting import CastingModel
    from repro.hardware.registry import (
        GRACE_CPU, HOPPER_H100, c2c_bandwidth_model,
    )

    MiB = 1024**2
    model = CastingModel(HOPPER_H100, GRACE_CPU, c2c_bandwidth_model())
    rows = [[r["fp32_bytes"] // MiB, r["cast_gpu_move_fp32_ms"],
             r["cast_cpu_move_fp16_ms"], r["cpu_over_gpu_ratio"]]
            for r in model.sweep([2**k * MiB for k in range(4, 12)])]
    print_table(
        "Fig. 9 — casting path cost (paper: CPU path ~2x)",
        ["fp32 MiB", "GPU path (ms)", "CPU path (ms)", "ratio"], rows,
    )


def _cmd_fig10(args: argparse.Namespace) -> None:
    from repro.training import throughput_sweep

    systems = ["ddp", "zero_offload", "zero_infinity", "fsdp_offload",
               "superoffload"]
    sizes = [1, 3, 5] if args.quick else [1, 2, 3, 4, 5, 6, 8, 10, 13, 15,
                                          20, 25]
    rows = throughput_sweep(systems, sizes, 1, 8)
    table: Dict[float, Dict[str, float | None]] = {}
    for r in rows:
        table.setdefault(r["model_billions"], {})[r["system"]] = r["tflops"]
    print_table(
        "Fig. 10 — single superchip TFLOPS (batch 8)",
        ["model"] + systems,
        [[f"{s}B"] + [table[s][sys] for sys in systems] for s in sizes],
    )


def _cmd_fig11(args: argparse.Namespace) -> None:
    from repro.training import throughput_sweep

    systems = ["megatron", "zero2", "zero3", "zero_offload", "superoffload"]
    cases = ((4, 16, [5, 10, 20, 50]), (16, 128, [20, 50, 80, 200]))
    if args.quick:
        cases = ((4, 16, [5, 20]),)
    for n, batch, sizes in cases:
        rows = throughput_sweep(systems, sizes, n, batch)
        table: Dict[float, Dict[str, float | None]] = {}
        for r in rows:
            table.setdefault(r["model_billions"], {})[r["system"]] = r["tflops"]
        print_table(
            f"Fig. 11 — {n} superchips, batch {batch} (per-GPU TFLOPS)",
            ["model"] + systems,
            [[f"{s}B"] + [table[s][sys] for sys in systems] for s in sizes],
        )


def _cmd_fig12(args: argparse.Namespace) -> None:
    from repro.models.config import MODEL_CONFIG_TABLE
    from repro.systems import RunSetting, build_all_systems, max_sequence_tokens
    from repro.training.cluster import gh200_cluster

    systems = build_all_systems()
    chips = [args.chips] if args.chips else [4, 8]
    rows = []
    for n in chips:
        cluster = gh200_cluster(n)
        for billions in (13, 30):
            config = MODEL_CONFIG_TABLE[billions]
            proto = RunSetting(config, cluster, global_batch=1, seq=n * 1024)
            for name in ("ulysses", "superoffload_ulysses"):
                system = systems[name]
                max_seq = max_sequence_tokens(system, proto)
                mfu = None
                if max_seq:
                    est = system.best_estimate(
                        RunSetting(config, cluster, global_batch=1,
                                   seq=max_seq)
                    )
                    mfu = est.mfu
                rows.append([n, f"{billions}B", name,
                             f"{max_seq // 1024}K" if max_seq else None, mfu])
    print_table(
        "Fig. 12 — max sequence length and MFU",
        ["chips", "model", "system", "max seq", "MFU"], rows,
    )


def _cmd_fig13(args: argparse.Namespace) -> None:
    from repro.training import max_model_table

    systems = ["ddp", "megatron", "zero2", "zero3", "zero_offload",
               "zero_infinity", "fsdp_offload", "superoffload"]
    rows = max_model_table(systems, [1, 4, 16])
    table: Dict[str, Dict[int, float]] = {}
    for r in rows:
        table.setdefault(r["system"], {})[r["n_superchips"]] = (
            r["max_model_billions"]
        )
    print_table(
        "Fig. 13 — largest trainable model (billions)",
        ["system", "1 chip", "4 chips", "16 chips"],
        [[s, table[s][1], table[s][4], table[s][16]] for s in systems],
    )


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.training import ablation_table

    rows = ablation_table()
    paper = [116.20, 128.23, 144.49, 209.36, 238.92]
    print_table(
        "Table 2 — optimization breakdown (5B, batch 8)",
        ["configuration", "TFLOPS (ours)", "TFLOPS (paper)"],
        [[r["row"], r["tflops"], p] for r, p in zip(rows, paper)],
    )


def _cmd_table3(args: argparse.Namespace) -> None:
    from repro.optim import adam_latency_table
    from repro.optim.kernels import paper_table3_reference

    ours = adam_latency_table()
    paper = paper_table3_reference()
    print_table(
        "Table 3 — Adam latency (s), ours/paper",
        ["params", "PT-CPU", "CPU-Adam", "GraceAdam"],
        [[f"{o['params_billion']:g}B",
          f"{o['pt_cpu']:.3f}/{p['pt_cpu']:.3f}",
          f"{o['cpu_adam']:.3f}/{p['cpu_adam']:.3f}",
          f"{o['grace_adam']:.3f}/{p['grace_adam']:.3f}"]
         for o, p in zip(ours, paper)],
    )


def _cmd_fig14(args: argparse.Namespace) -> None:
    import numpy as np

    from repro.training import InstabilityInjector, STVTrainer

    total = 120 if args.quick else 300
    warmup = total // 5
    trainer = STVTrainer(
        batch=8,
        injector=InstabilityInjector(warmup_iters=warmup,
                                     spike_probability=0.35,
                                     spike_scale=80.0,
                                     overflow_probability=0.1, seed=0),
        seed=1,
    )
    record = trainer.run(total)
    step = total // 10
    print_table(
        "Fig. 14 — loss and rollbacks during STV training",
        ["iterations", "mean loss", "rollbacks"],
        [[f"{i * step}-{(i + 1) * step}",
          float(np.mean(record.losses[i * step:(i + 1) * step])),
          sum(i * step <= r < (i + 1) * step
              for r in record.rollback_iterations)]
         for i in range(10)],
    )
    print(f"rollback rate: warm-up {record.rollback_rate(0, warmup):.1%}, "
          f"after {record.rollback_rate(warmup):.2%}")


def _cmd_fig15(args: argparse.Namespace) -> None:
    from repro.models.config import MODEL_CONFIG_TABLE
    from repro.systems import RunSetting, SuperOffloadSystem, ZeROOffload
    from repro.training.cluster import gh200_cluster

    setting = RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(1),
                         global_batch=8)
    rows = []
    for system in (ZeROOffload(), SuperOffloadSystem()):
        est = system.best_estimate(setting)
        rows.append([system.display_name,
                     100 * (1 - est.gpu_idle_fraction()),
                     est.tflops_per_gpu])
    print_table(
        "Fig. 15 — GPU utilization (5B, batch 8)",
        ["system", "GPU util %", "TFLOPS"], rows,
    )


def _cmd_trace(args: argparse.Namespace) -> None:
    import json
    from pathlib import Path

    from repro.models.config import MODEL_CONFIG_TABLE
    from repro.numeric.transformer import TransformerParams
    from repro.systems import RunSetting, SuperOffloadSystem
    from repro.telemetry import SUMMARY_HEADERS, Telemetry
    from repro.telemetry.export import (
        validate_chrome_trace,
        write_chrome_trace,
        write_events_jsonl,
    )
    from repro.training import (
        DataParallelTrainer,
        InstabilityInjector,
        STVTrainer,
    )
    from repro.training.cluster import gh200_cluster

    telemetry = Telemetry()
    iters = 8 if args.quick else 32

    # Live half 1: the STV engine under injected instability, so the trace
    # contains fwd_bwd/cast/optim/validate *and* rollback spans.
    trainer = STVTrainer(
        batch=4,
        injector=InstabilityInjector(
            warmup_iters=max(4, iters // 2), spike_probability=0.6,
            spike_scale=80.0, overflow_probability=0.4, seed=0,
        ),
        seed=1,
        telemetry=telemetry,
    )
    trainer.run(iters)

    # Live half 2: a short ZeRO data-parallel run for the collective
    # call/byte counters.
    dp = DataParallelTrainer(
        TransformerParams(vocab=61, max_seq=16, hidden=24, n_layers=2,
                          n_heads=4),
        world_size=2,
        clip_norm=1.0,
        telemetry=telemetry,
    )
    dp.train(2 if args.quick else 4, batch=4)

    # Simulated half: the Fig. 15 steady-state timeline on its own pid.
    est = SuperOffloadSystem().best_estimate(
        RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(1), global_batch=8)
    )

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.json"
    events_path = out / "events.jsonl"
    document = write_chrome_trace(
        trace_path,
        tracer=telemetry.tracer,
        sim_traces={"superoffload-sim": est.trace},
    )
    validate_chrome_trace(json.loads(trace_path.read_text()))
    n_lines = write_events_jsonl(
        events_path, telemetry.tracer, telemetry.metrics
    )
    print_table(
        "repro trace — telemetry metrics summary",
        list(SUMMARY_HEADERS),
        telemetry.metrics.summary_rows(),
    )
    print(f"\nwrote {trace_path} ({len(document['traceEvents'])} events; "
          f"open at https://ui.perfetto.dev) and {events_path} "
          f"({n_lines} lines)")


def _cmd_profile(args: argparse.Namespace) -> None:
    import json
    from pathlib import Path

    from repro.exec.pool import KernelPool
    from repro.numeric.transformer import TransformerParams
    from repro.telemetry import StepProfiler, profiler_overhead
    from repro.telemetry.export import (
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.telemetry.flight import FlightRecorder
    from repro.telemetry.report import (
        MEMORY_HEADERS,
        OVERLAP_HEADERS,
        PHASE_HEADERS,
        PIPELINE_SIM_HEADERS,
        SIM_HEADERS,
        SPILL_SIM_HEADERS,
        WORKER_HEADERS,
        measured_trace,
        memory_rows,
        overlap_rows,
        phase_rows,
        pipeline_sim_rows,
        sim_comparison_rows,
        spill_sim_rows,
        worker_rows,
    )
    from repro.tensors.pinned import PinnedBufferPool
    from repro.training import (
        DataParallelTrainer,
        InstabilityInjector,
        STVTrainer,
    )

    iters = 4 if args.quick else 16
    spec = TransformerParams(vocab=64, max_seq=16, hidden=32, n_layers=2,
                             n_heads=2)

    # Run 1: the STV engine (rollback/cast/validate phases) under a
    # workspace, with the flight recorder riding along.
    profiler = StepProfiler()
    flight = FlightRecorder(profiler.telemetry, capacity=512)
    trainer = STVTrainer(
        spec=spec, batch=4,
        injector=InstabilityInjector(
            warmup_iters=max(2, iters // 2), spike_probability=0.6,
            spike_scale=80.0, overflow_probability=0.4, seed=0,
        ),
        seed=1, telemetry=profiler.telemetry, use_workspace=True,
    )
    ws = trainer.workspace
    profiler.watch_memory("workspace", lambda: ws.peak_bytes)
    trainer.run(iters)
    stv_report = profiler.report()
    print_table("repro profile — STV step phases", PHASE_HEADERS,
                phase_rows(stv_report))
    if stv_report.watermarks:
        print_table("repro profile — STV memory high-water",
                    MEMORY_HEADERS, memory_rows(stv_report))

    # Run 2: pipelined ZeRO data-parallel on a dedicated kernel pool —
    # the overlap audit and per-worker utilization.
    workers = args.workers or 2
    dp_profiler = StepProfiler()
    pool = KernelPool(workers, telemetry=dp_profiler.telemetry)
    pinned = PinnedBufferPool(capacity=8 << 20)
    dp = DataParallelTrainer(
        spec, world_size=2, clip_norm=1.0,
        telemetry=dp_profiler.telemetry, use_workspace=True,
        pipeline=True, bucket_elements=4096, pool=pool, pinned_pool=pinned,
    )
    dp_profiler.watch_memory(
        "zero_arena", lambda: dp.arena.flat.nbytes
    )
    dp_profiler.watch_memory(
        "pinned_staging", lambda: pinned.capacity - pinned.free_bytes
    )
    dp.train(max(2, iters // 2), batch=4)
    dp_report = dp_profiler.report()
    print_table("repro profile — DP (pipelined ZeRO) step phases",
                PHASE_HEADERS, phase_rows(dp_report))
    if dp_report.overlap:
        print_table(
            "repro profile — ZeRO bucket-pipeline overlap audit",
            OVERLAP_HEADERS, overlap_rows(dp_report),
        )
        eff = dp_report.mean_overlap_efficiency
        print(f"mean overlap efficiency: {eff:.2f} "
              f"(0 = serial, 1 = perfect overlap)")
    if dp_report.workers:
        print_table("repro profile — KernelPool worker utilization",
                    WORKER_HEADERS, worker_rows(dp_report))
    print_table("repro profile — DP memory high-water", MEMORY_HEADERS,
                memory_rows(dp_report))

    # Run 3: disk-offloaded pipelined ZeRO with an async checkpointer —
    # the spill tier's phases (spill_wait/checkpoint), the overlap
    # audit's spill columns, and the NVMe-model cross-check.
    import tempfile

    disk_profiler = StepProfiler()
    disk_pool = KernelPool(workers, telemetry=disk_profiler.telemetry)
    with tempfile.TemporaryDirectory(prefix="repro-profile-spill-") as sd:
        disk = DataParallelTrainer(
            spec, world_size=2, clip_norm=1.0,
            telemetry=disk_profiler.telemetry, use_workspace=True,
            pipeline=True, bucket_elements=4096, pool=disk_pool,
            offload="disk", spill_dir=str(Path(sd) / "spill"),
        )
        disk.attach_checkpointer(str(Path(sd) / "ckpt"), every=2)
        disk.train(max(2, iters // 2), batch=4)
        disk.finish_checkpoints()
        spill_bytes_read = disk.optimizer.spill.bytes_read
        spill_bytes_written = disk.optimizer.spill.bytes_written
        disk.optimizer.release_staging()
        disk.optimizer.close_spill()
    disk_pool.shutdown()
    disk_report = disk_profiler.report()
    print_table("repro profile — disk-offloaded ZeRO step phases",
                PHASE_HEADERS, phase_rows(disk_report))
    if disk_report.overlap:
        print_table(
            "repro profile — disk ZeRO overlap audit (spill columns)",
            OVERLAP_HEADERS, overlap_rows(disk_report),
        )
        spill_effs = [a.spill_overlap_efficiency
                      for a in disk_report.overlap
                      if a.spill_overlap_efficiency is not None]
        if spill_effs:
            print(f"mean spill-read overlap efficiency: "
                  f"{sum(spill_effs) / len(spill_effs):.2f} "
                  f"(0 = every byte stalled, 1 = fully hidden)")
    spill_read_s = sum(s.finish - s.start
                       for s in disk_profiler.tracer.spans
                       if s.name == "spill_read")
    spill_write_s = sum(s.finish - s.start
                        for s in disk_profiler.tracer.spans
                        if s.name == "spill_write")

    # Run 4: a plan-routed TP2xPP2 step — the 1F1B phase taxonomy
    # (pp_send/pp_recv/pp_bubble) and the measured bubble fraction.
    from repro.parallel.plan import ParallelPlan

    pp_microbatches = 4
    pp_plan = ParallelPlan(tp=2, pp=2)
    pp_profiler = StepProfiler()
    pp_trainer = DataParallelTrainer(
        spec, world_size=1, telemetry=pp_profiler.telemetry,
        plan=pp_plan, n_microbatches=pp_microbatches,
    )
    pp_trainer.train(max(2, iters // 2), batch=4)
    pp_report = pp_profiler.report()
    print_table(
        f"repro profile — plan {pp_plan.describe()} step phases "
        f"(m={pp_microbatches})",
        PHASE_HEADERS, phase_rows(pp_report),
    )
    measured_bubble = pp_trainer.plan_model.measured_bubble_fraction()
    print(f"measured 1F1B bubble fraction: {measured_bubble:.3f} "
          f"(ideal (p-1)/(m+p-1) = "
          f"{(pp_plan.pp - 1) / (pp_microbatches + pp_plan.pp - 1):.3f})")

    # Run 5: quantized serving decode — a continuous-batching burst with
    # a page budget tight enough to force eviction, so the serve-step
    # taxonomy (prefill/decode/kv_evict/dequant) shows real time.
    import tempfile as _tmp

    import numpy as np

    from repro.numeric.transformer import TinyTransformer
    from repro.serving import (
        ContinuousBatchingScheduler,
        InferenceEngine,
        SessionRegistry,
    )

    serve_profiler = StepProfiler()
    serve_spec = TransformerParams(vocab=128, max_seq=64, hidden=64,
                                   n_layers=2, n_heads=4)
    serve_model = TinyTransformer(serve_spec, seed=5)
    serve_rng = np.random.default_rng(5)
    with _tmp.TemporaryDirectory(prefix="repro-profile-kv-") as kvdir:
        with InferenceEngine(
            serve_model, max_pages=12, spill=str(Path(kvdir) / "kv"),
            telemetry=serve_profiler.telemetry,
        ) as engine:
            registry = SessionRegistry()
            n_sessions = 4 if args.quick else 8
            for _ in range(n_sessions):
                registry.create(
                    serve_rng.integers(0, serve_spec.vocab, size=12),
                    max_new_tokens=8 if args.quick else 16, eos_id=None,
                )
            ContinuousBatchingScheduler(
                engine, registry, max_batch=4
            ).run_until_done()
    kv_evicted = int(
        serve_profiler.telemetry.metrics.counter("kv_pages_evicted").value
    )
    serve_report = serve_profiler.report()
    print_table(
        f"repro profile — serving decode step phases "
        f"({n_sessions} sessions, {kv_evicted} pages evicted)",
        PHASE_HEADERS, phase_rows(serve_report),
    )

    sim_rows = None
    spill_sim = None
    pipeline_sim = None
    if args.compare_sim:
        from repro.models.config import MODEL_CONFIG_TABLE
        from repro.systems import RunSetting, SuperOffloadSystem
        from repro.training.cluster import gh200_cluster

        est = SuperOffloadSystem().best_estimate(
            RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(1),
                       global_batch=8)
        )
        sim_rows = sim_comparison_rows(dp_report, est.trace,
                                       est.steady_window)
        print_table(
            "repro profile — measured vs simulated busy shares "
            "(DP run vs SuperOffload sim, 5B)",
            SIM_HEADERS, sim_rows,
        )
        spill_sim = spill_sim_rows(
            spill_bytes_read, spill_bytes_written,
            spill_read_s, spill_write_s,
        )
        if spill_sim:
            print_table(
                "repro profile — measured spill I/O vs the simulator's "
                "NVMe link model",
                SPILL_SIM_HEADERS, spill_sim,
            )
        # The 1F1B cross-check: the substrate's measured bubble vs the
        # PipelinedTP timeline at the same (stages, microbatches).
        from repro.systems import ExecutionChoice, PipelinedTP

        pp_system = PipelinedTP(tp=pp_plan.tp, pp=pp_plan.pp)
        pp_setting = RunSetting(
            MODEL_CONFIG_TABLE[5], gh200_cluster(4),
            global_batch=pp_microbatches,
        )
        predicted_bubble = pp_system.predicted_bubble_fraction(
            pp_setting, ExecutionChoice(1, pp_microbatches,
                                        checkpointing=False),
        )
        pipeline_sim = pipeline_sim_rows(
            measured_bubble, predicted_bubble,
            pp_plan.pp, pp_microbatches,
        )
        print_table(
            "repro profile — measured vs simulated 1F1B bubble "
            f"(plan {pp_plan.describe()}, m={pp_microbatches})",
            PIPELINE_SIM_HEADERS, pipeline_sim,
        )

    # Overhead + bitwise check: the profiler must observe, never perturb.
    overhead = profiler_overhead(
        iters=2 if args.quick else 3, repeats=2 if args.quick else 3
    )
    print(f"\nprofiler overhead: {overhead.overhead_pct:.1f}% "
          f"(baseline {overhead.baseline_seconds * 1e3:.1f} ms, "
          f"profiled {overhead.profiled_seconds * 1e3:.1f} ms), "
          f"losses bitwise identical: {overhead.bitwise_identical}")

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.json"
    mt = measured_trace(dp_report)
    mt.validate()
    document = write_chrome_trace(
        trace_path, tracer=dp_profiler.tracer,
        sim_traces={"measured-phases": mt},
    )
    validate_chrome_trace(json.loads(trace_path.read_text()))
    profile_path = out / "PROFILE.json"
    profile_path.write_text(json.dumps({
        "stv_phase_seconds": stv_report.phase_totals,
        "dp_phase_seconds": dp_report.phase_totals,
        "overlap_efficiency": dp_report.mean_overlap_efficiency,
        "worker_utilization": [
            {"worker": w.worker, "chunks": w.chunks,
             "busy_seconds": w.busy_seconds,
             "queue_wait_seconds": w.queue_wait_seconds}
            for w in dp_report.workers
        ],
        "memory_highwater_bytes": {
            m.name: m.peak_bytes
            for m in stv_report.watermarks + dp_report.watermarks
        },
        "sim_comparison": sim_rows,
        "spill_phase_seconds": disk_report.phase_totals,
        "spill_bytes": {"read": spill_bytes_read,
                        "written": spill_bytes_written},
        "spill_io_seconds": {"read": spill_read_s,
                             "write": spill_write_s},
        "spill_overlap": [
            {"buckets": a.buckets,
             "spill_read_seconds": a.spill_read_seconds,
             "spill_write_seconds": a.spill_write_seconds,
             "spill_wait_seconds": a.spill_wait_seconds,
             "spill_overlap_efficiency": a.spill_overlap_efficiency}
            for a in disk_report.overlap
        ],
        "spill_sim_comparison": spill_sim,
        "serving_phase_seconds": serve_report.phase_totals,
        "kv_pages_evicted": kv_evicted,
        "pp_phase_seconds": pp_report.phase_totals,
        "pipeline_bubble": {
            "plan": pp_plan.describe(),
            "microbatches": pp_microbatches,
            "measured": measured_bubble,
            "ideal": (pp_plan.pp - 1) / (pp_microbatches + pp_plan.pp - 1),
        },
        "pipeline_sim_comparison": pipeline_sim,
        "overhead_pct": overhead.overhead_pct,
        "bitwise_identical": overhead.bitwise_identical,
    }, indent=2) + "\n")
    flight_path = out / "flight.jsonl"
    n_flight = flight.dump(str(flight_path), reason="profile")
    pool.shutdown()
    print(f"\nwrote {trace_path} ({len(document['traceEvents'])} events; "
          f"open at https://ui.perfetto.dev), {profile_path}, and "
          f"{flight_path} ({n_flight} lines)")


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Zero-stall checkpoint/resume round-trip, resident and disk-offloaded.

    For each offload mode: train a reference run to completion, train a
    second run halfway, drop it (the checkpoint directory is all that
    survives — the crash-consistency tests also SIGKILL a subprocess
    mid-step), resume from the manifest, and verify the resumed master
    plane is bitwise identical to the uninterrupted run's.
    """
    import json
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.training.checkpoint import read_manifest, run_checkpointed

    iters = 4 if args.quick else 8
    rows = []
    doc: Dict[str, dict] = {}
    all_ok = True
    for offload in ("none", "disk"):
        with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as td:
            base = Path(td)
            ref_kw = dict(iterations=iters, batch=4, world_size=2, every=1)
            if offload == "disk":
                ref_kw.update(offload="disk")
            ref = run_checkpointed(
                str(base / "ref"), spill_dir=str(base / "ref-spill")
                if offload == "disk" else None, **ref_kw,
            )
            # Interrupted run: halfway, then a fresh process-equivalent
            # resumes from the manifest alone.
            run_checkpointed(
                str(base / "ckpt"), spill_dir=str(base / "spill-a")
                if offload == "disk" else None,
                iterations=iters // 2, batch=4, world_size=2, every=1,
                offload=offload,
            )
            manifest = read_manifest(str(base / "ckpt"))
            resumed = run_checkpointed(
                str(base / "ckpt"), spill_dir=str(base / "spill-b")
                if offload == "disk" else None,
                iterations=iters, batch=4, world_size=2, every=1,
                offload=offload,
            )
            identical = bool(
                np.array_equal(ref.arena.flat, resumed.arena.flat)
            )
            all_ok = all_ok and identical
            rows.append([
                offload, iters, manifest.step, manifest.slot,
                ", ".join(manifest.planes),
                "ok" if identical else "MISMATCH",
            ])
            doc[offload] = {
                "iterations": iters,
                "resumed_from_step": manifest.step,
                "slot": manifest.slot,
                "planes": list(manifest.planes),
                "chunk_bytes": manifest.chunk_bytes,
                "bitwise_identical": identical,
            }
    print_table(
        "repro checkpoint — interrupt/resume round-trip "
        "(resumed vs uninterrupted)",
        ["offload", "iters", "resumed@step", "slot", "planes", "identity"],
        rows,
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    ckpt_path = out / "CHECKPOINT.json"
    ckpt_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {ckpt_path}")
    return 0 if all_ok else 5


def _cmd_tune(args: argparse.Namespace) -> int:
    """Search every tunable on this host; persist the winning profile."""
    import json
    from datetime import datetime, timezone
    from pathlib import Path

    from repro.tune import profile as tune_profile
    # Deliberately lazy: search imports the exec/optim/numeric consumers,
    # which import repro.tune — the package init must stay cycle-free.
    from repro.tune import search

    report = search.run_tuning(quick=args.quick, workers=args.workers)
    rows = []
    for o in report.outcomes:
        if o.chosen is None:
            chosen = "(default)"
        elif o.band_hi is not None:
            chosen = f"{o.chosen:,} for n<={o.band_hi:,}"
        else:
            chosen = f"{o.chosen:,}"
        rows.append([o.name, o.kind, f"{o.default:,}", chosen,
                     "ok" if o.bitwise_ok else "MISMATCH",
                     o.note or "measured crossover/candidate win"])
    print_table(
        f"repro tune — search outcomes (host {report.profile.host}, "
        f"{report.workers} workers)",
        ["tunable", "kind", "default", "chosen", "identity", "note"],
        rows,
    )
    if report.validation:
        print_table(
            "repro tune — tuned vs default on substrate workloads",
            ["check", "size", "tuned (ms)", "default (ms)", "speedup",
             "identity"],
            [[c.name, f"{c.size:,}", round(c.tuned_ms, 3),
              round(c.default_ms, 3), f"{c.speedup:.2f}x",
              "ok" if c.bitwise else "MISMATCH"]
             for c in report.validation],
        )
        print(f"\ngeomean tuned-vs-default speedup: {report.geomean:.3f}x "
              f"over {len(report.validation)} checks; identity: "
              f"{'all ok' if report.all_bitwise else 'FAILED'}")
    report.profile.created = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    path = tune_profile.save(
        report.profile, args.profile or tune_profile.HOME_PROFILE
    )
    print(f"wrote profile ({len(report.profile.entries)} entries) for "
          f"host {report.profile.host} to {path}")
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    report_path = out / "TUNE_report.json"
    report_path.write_text(json.dumps(report.to_doc(), indent=2) + "\n")
    print(f"wrote {report_path}")
    return 0 if report.all_bitwise else 3


def _geomean_line(section: str, rows: List[dict]) -> str:
    """One summary line: the geometric-mean speedup across a section's rows."""
    import math

    speedups = [r["speedup"] for r in rows]
    gm = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return f"{section}: geomean speedup {gm:.2f}x over {len(rows)} sizes"


#: Per bench section: the row key whose time the tuned profile steers
#: (the optimized contestant) — the A/B column of ``bench --tuned``.
_BENCH_TUNED_KEY = {
    "zero_step": "arena_ms",
    "rollback": "arena_ms",
    "parallel_step": "parallel_ms",
    "zero_pipeline": "pipeline_ms",
    "attention": "streaming_step_ms",
    "model_step": "workspace_ms",
    "spill": "overlap_ms",
    "checkpoint": "async_stall_ms",
}


def _attach_tuned_deltas(result: dict, default_result: dict) -> None:
    """Fold the default-arm times into the tuned rows, in place."""
    for section, key in _BENCH_TUNED_KEY.items():
        rows = result.get(section)
        base_rows = default_result.get(section)
        if not isinstance(rows, list) or not isinstance(base_rows, list):
            continue
        for r, b in zip(rows, base_rows):
            r["default_" + key] = b[key]
            r["tuned_vs_default"] = (
                b[key] / r[key] if r.get(key) else None
            )


def _load_bench_baseline(path) -> dict:
    """{(section, size): speedup} from a committed BENCH_substrate.json."""
    import json

    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    out = {}
    for section in _BENCH_TUNED_KEY:
        for r in doc.get(section, []) or []:
            if not isinstance(r, dict) or "speedup" not in r:
                continue
            size = r.get("elements", r.get("seq"))
            if size is not None:
                out[(section, size)] = r["speedup"]
    par = doc.get("parallelism")
    if isinstance(par, dict) and "speedup" in par:
        out[("parallelism", "grid")] = par["speedup"]
    inf = doc.get("inference")
    if isinstance(inf, dict):
        for r in inf.get("qmatmul", []) or []:
            if isinstance(r, dict) and "speedup" in r:
                size = r.get("elements")
                if size is not None:
                    out[("inference", size)] = r["speedup"]
        if "speedup" in inf:
            out[("inference", "geomean")] = inf["speedup"]
    return out


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.training import substrate_bench
    from repro.tune import runtime as tune_runtime

    sections = args.sections.split(",") if args.sections else None
    profile = None
    if args.tuned:
        from repro.tune import profile as tune_profile

        profile_path = (Path(args.profile) if args.profile
                        else tune_profile.default_path())
        profile = tune_profile.load(profile_path)
        if profile is None:
            print(f"error: no tuning profile for this host at "
                  f"{profile_path}; run 'repro tune' first", file=sys.stderr)
            return 2
        print(f"tuned run: {profile_path} (host {profile.host}, "
              f"{len(profile.entries)} entries)\n")
        with tune_runtime.overridden(profile):
            result = substrate_bench(
                quick=args.quick, workers=args.workers, sections=sections
            )
        # The A/B arm: the same sections with every tunable at its
        # registry default, so each row carries tuned-vs-default.
        with tune_runtime.overridden(None):
            default_result = substrate_bench(
                quick=args.quick, workers=args.workers, sections=sections
            )
        _attach_tuned_deltas(result, default_result)
        result["tuned"] = True
        result["tune_profile_host"] = profile.host
        result["tune_plan"] = profile.plan()
    else:
        result = substrate_bench(
            quick=args.quick, workers=args.workers, sections=sections
        )

    baseline_path = Path(args.baseline) if args.baseline else Path(
        "BENCH_substrate.json"
    )
    baseline = _load_bench_baseline(baseline_path)
    regressions: List[str] = []

    def extra_headers() -> List[str]:
        cols = []
        if args.tuned:
            cols.append("vs default")
        if baseline:
            cols.append("d base")
        return cols

    def extra_values(section: str, r: dict) -> List[str]:
        vals = []
        if args.tuned:
            tv = r.get("tuned_vs_default")
            vals.append(f"{tv:.2f}x" if tv is not None else "-")
        if baseline:
            size = r.get("elements", r.get("seq"))
            base = baseline.get((section, size))
            if base is None:
                vals.append("-")
            else:
                delta = r["speedup"] - base
                vals.append(f"{delta:+.2f}")
                if r["speedup"] < base - args.tolerance:
                    regressions.append(
                        f"{section} size {size}: {r['speedup']:.2f}x vs "
                        f"baseline {base:.2f}x "
                        f"(tolerance {args.tolerance:.2f})"
                    )
        return vals

    summaries = []
    if "zero_step" in result:
        print_table(
            "repro bench — arena vs dict-copy ZeRO step "
            f"(world {result['world_size']})",
            ["elements", "dict-copy (ms)", "arena (ms)", "speedup"]
            + extra_headers(),
            [[f"{r['elements']:,}", r["dict_copy_ms"], r["arena_ms"],
              f"{r['speedup']:.2f}x"] + extra_values("zero_step", r)
             for r in result["zero_step"]],
        )
        summaries.append(_geomean_line("zero_step", result["zero_step"]))
    if "rollback" in result:
        print_table(
            "repro bench — STV bucket snapshot capture+restore",
            ["elements", "per-tensor (ms)", "arena memcpy (ms)", "speedup",
             "range path"] + extra_headers(),
            [[f"{r['elements']:,}", r["per_tensor_ms"], r["arena_ms"],
              f"{r['speedup']:.2f}x",
              "yes" if r["arena_path_used"] else "no (below cutoff)"]
             + extra_values("rollback", r)
             for r in result["rollback"]],
        )
        summaries.append(_geomean_line("rollback", result["rollback"]))
    if "steady_state" in result:
        steady = result["steady_state"]
        print_table(
            "repro bench — steady-state arena traffic per ZeRO step",
            ["elements", "steps", "bytes copied", "bytes aliased"],
            [[f"{steady['elements']:,}", steady["steps"],
              steady["arena_bytes_copied_per_step"],
              steady["arena_bytes_aliased_per_step"]]],
        )
    if "parallel_step" in result:
        print_table(
            "repro bench — chunked-executor Adam step "
            f"({result['workers']} workers)",
            ["elements", "serial flat (ms)", "tiled (ms)", "executor (ms)",
             "speedup", "vs tiled", "bitwise"] + extra_headers(),
            [[f"{r['elements']:,}", r["serial_ms"], r["tiled_ms"],
              r["parallel_ms"], f"{r['speedup']:.2f}x",
              f"{r['speedup_vs_tiled']:.2f}x",
              "ok" if r["bitwise_identical"] else "MISMATCH"]
             + extra_values("parallel_step", r)
             for r in result["parallel_step"]],
        )
        summaries.append(
            _geomean_line("parallel_step", result["parallel_step"])
        )
    if "zero_pipeline" in result:
        print_table(
            "repro bench — overlapped bucket ZeRO pipeline "
            f"({result['workers']} workers)",
            ["elements", "bucket", "serial (ms)", "pipeline (ms)", "speedup",
             "bitwise"] + extra_headers(),
            [[f"{r['elements']:,}", f"{r['bucket_elements']:,}",
              r["serial_ms"], r["pipeline_ms"], f"{r['speedup']:.2f}x",
              "ok" if r["bitwise_identical"] else "MISMATCH"]
             + extra_values("zero_pipeline", r)
             for r in result["zero_pipeline"]],
        )
        summaries.append(
            _geomean_line("zero_pipeline", result["zero_pipeline"])
        )
    if "attention" in result:
        print_table(
            "repro bench — streaming blocked attention vs dense "
            f"({result['workers']} workers)",
            ["seq", "dense fwd (ms)", "stream fwd (ms)", "fwd speedup",
             "dense f+b (ms)", "stream f+b (ms)", "f+b speedup",
             "mem ratio", "tol", "det"] + extra_headers(),
            [[r["seq"], r["dense_fwd_ms"], r["streaming_fwd_ms"],
              f"{r['fwd_speedup']:.2f}x", r["dense_step_ms"],
              r["streaming_step_ms"], f"{r['step_speedup']:.2f}x",
              f"{r['peak_transient_ratio']:.1f}x",
              "ok" if r["tolerance_ok"] else "FAIL",
              "ok" if r["bitwise_across_workers"] else "MISMATCH"]
             + extra_values("attention", r)
             for r in result["attention"]],
        )
        summaries.append(_geomean_line("attention", result["attention"]))
    if "model_step" in result:
        print_table(
            "repro bench — workspace-backed streaming model step "
            f"({result['workers']} workers)",
            ["seq", "baseline (ms)", "workspace (ms)", "speedup",
             "steady allocs", "peak bytes", "tol"] + extra_headers(),
            [[r["seq"], r["baseline_ms"], r["workspace_ms"],
              f"{r['speedup']:.2f}x", r["steady_allocs_per_step"],
              f"{r['workspace_peak_bytes']:,}",
              "ok" if r["tolerance_ok"] else "FAIL"]
             + extra_values("model_step", r)
             for r in result["model_step"]],
        )
        summaries.append(_geomean_line("model_step", result["model_step"]))
    if "spill" in result:
        print_table(
            "repro bench — disk-offloaded ZeRO: overlapped vs sync spill "
            f"({result['workers']} workers)",
            ["elements", "bucket", "resident (ms)", "sync (ms)",
             "overlap (ms)", "speedup", "vs resident", "bitwise"]
            + extra_headers(),
            [[f"{r['elements']:,}", f"{r['bucket_elements']:,}",
              r["resident_ms"], r["sync_ms"], r["overlap_ms"],
              f"{r['speedup']:.2f}x", f"{r['offload_overhead']:.2f}x",
              "ok" if r["bitwise_identical"] else "MISMATCH"]
             + extra_values("spill", r)
             for r in result["spill"]],
        )
        summaries.append(_geomean_line("spill", result["spill"]))
    if "checkpoint" in result:
        print_table(
            "repro bench — async checkpoint stall vs blocking save",
            ["elements", "blocking (ms)", "async stall (ms)", "speedup",
             "saves", "bitwise"] + extra_headers(),
            [[f"{r['elements']:,}", r["blocking_ms"], r["async_stall_ms"],
              f"{r['speedup']:.2f}x", r["saves"],
              "ok" if r["bitwise_identical"] else "MISMATCH"]
             + extra_values("checkpoint", r)
             for r in result["checkpoint"]],
        )
        summaries.append(_geomean_line("checkpoint", result["checkpoint"]))
    if "parallelism" in result:
        par = result["parallelism"]
        print_table(
            "repro bench — ParallelPlan substrate equivalence (world 4)",
            ["plan", "m", "grad max diff", "equivalence",
             "bubble meas/ideal"],
            [[r["plan"], r["microbatches"],
              f"{r['grad_max_abs_diff']:.1e}",
              ("bitwise" if r["bitwise"]
               else "ok (tol)" if r["tolerance_ok"] else "FAIL"),
              ("-" if r["measured_bubble"] is None
               else f"{r['measured_bubble']:.3f}/{r['ideal_bubble']:.3f}")]
             for r in par["substrate"]],
        )
        print_table(
            "repro bench — best parallel plan per (model, world)",
            ["model", "world", "batch", "best plan", "best (s)",
             "pure-DP (s)", "speedup", "composed beats DP"],
            [[g["model"], g["world"], g["global_batch"], g["best_plan"],
              f"{g['best_iter_s']:.3f}", f"{g['pure_dp_iter_s']:.3f}",
              f"{g['speedup_vs_pure_dp']:.2f}x",
              "yes" if g["composed_beats_pure_dp"] else "no"]
             for g in par["grid"]],
        )
        summaries.append(
            f"parallelism: best plan {par['best_plan']} is "
            f"{par['speedup']:.2f}x over pure DP at the largest config"
        )
        base = baseline.get(("parallelism", "grid"))
        if base is not None and par["speedup"] < base - args.tolerance:
            regressions.append(
                f"parallelism: {par['speedup']:.2f}x vs baseline "
                f"{base:.2f}x (tolerance {args.tolerance:.2f})"
            )
    if "inference" in result:
        inf = result["inference"]
        print_table(
            "repro bench — fused int8 qmatmul vs dense-dequant "
            f"({result['workers']} workers)",
            ["shape", "dense-deq (ms)", "fused (ms)", "fp32 (ms)",
             "speedup", "vs fp32", "mem", "tol", "bound", "det"]
            + extra_headers(),
            [[r["shape"], r["dense_dequant_ms"], r["fused_ms"],
              r["fp32_resident_ms"], f"{r['speedup']:.2f}x",
              f"{r['vs_fp32']:.2f}x", f"{r['mem_ratio']:.2f}x",
              "ok" if r["tolerance_ok"] else "FAIL",
              "ok" if r["bound_ok"] else "FAIL",
              "ok" if r["deterministic"] else "MISMATCH"]
             + extra_values("inference", r)
             for r in inf["qmatmul"]],
        )
        print_table(
            "repro bench — continuous-batching serving sweep "
            "(int8 + paged KV)",
            ["sessions", "tokens", "req/s", "tok/s", "p50 (ms)",
             "p95 (ms)", "ttft (ms)", "mem"],
            [[r["sessions"], r["tokens"],
              f"{r['request_rate_per_s']:.1f}",
              f"{r['tokens_per_sec']:.0f}", f"{r['p50_token_ms']:.2f}",
              f"{r['p95_token_ms']:.2f}", f"{r['ttft_ms']:.1f}",
              f"{r['memory_ratio']:.2f}x"]
             for r in inf["serving"]],
        )
        summaries.append(
            f"inference: geomean qmatmul speedup {inf['speedup']:.2f}x; "
            f"{inf['tokens_per_sec']:.0f} tok/s peak, "
            f"p95 {inf['p95_token_ms']:.2f} ms/token"
        )
        base = baseline.get(("inference", "geomean"))
        if base is not None and inf["speedup"] < base - args.tolerance:
            regressions.append(
                f"inference: geomean {inf['speedup']:.2f}x vs baseline "
                f"{base:.2f}x (tolerance {args.tolerance:.2f})"
            )
    if summaries:
        print()
        for line in summaries:
            print(line)
    # Honest-reporting pass: any measured regression gets a WARN line so
    # a below-1.0x row (the known small-size losses of parallel_step /
    # zero_pipeline at 65k elements) never hides inside a healthy geomean.
    warned = False
    warn_rows = [
        (section, r)
        for section in ("zero_step", "rollback", "parallel_step",
                        "zero_pipeline", "attention", "model_step",
                        "spill", "checkpoint")
        for r in result.get(section, [])
    ] + [
        ("inference", r)
        for r in (result.get("inference") or {}).get("qmatmul", [])
    ]
    for section, r in warn_rows:
        speedup = r.get("speedup")
        if speedup is not None and speedup < 1.0:
            size = r.get("elements", r.get("seq", "?"))
            print(f"WARN: {section} size {size} speedup "
                  f"{speedup:.2f}x < 1.0x (slower than baseline)")
            warned = True
    if warned:
        print("WARN lines indicate sizes where the optimized path loses "
              "to its baseline; see BENCH_substrate.json for details.")
    if regressions:
        print(f"\nregressions vs {baseline_path}:")
        for line in regressions:
            print(f"  REGRESSION: {line}")
    elif baseline:
        print(f"\nno regressions vs {baseline_path} beyond "
              f"tolerance {args.tolerance:.2f}")
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    bench_path = out / "BENCH_substrate.json"
    bench_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {bench_path}")
    if args.strict and regressions:
        return 4
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Streaming-serve smoke: concurrent clients over the int8 engine.

    Builds a small randomly-initialized model, quantizes it into the
    engine, and drives ``--sessions`` concurrent client threads through
    the continuous-batching streaming server — the CLI face of
    :class:`repro.serving.StreamingServer`.  Prints one line per session
    plus the aggregate token metrics the bench records.
    """
    import threading

    import numpy as np

    from repro.numeric.transformer import TinyTransformer, TransformerParams
    from repro.serving import InferenceEngine, StreamingServer

    if args.quick:
        spec = TransformerParams(vocab=128, max_seq=64, hidden=64,
                                 n_layers=2, n_heads=4)
    else:
        spec = TransformerParams(vocab=512, max_seq=160, hidden=128,
                                 n_layers=4, n_heads=8)
    sessions = args.sessions
    prompt_len = min(args.prompt_tokens, spec.max_seq - 1)
    max_new = min(args.max_new_tokens, spec.max_seq - prompt_len)
    model = TinyTransformer(spec, seed=0)
    engine = InferenceEngine(model)
    ratio = engine.memory_ratio
    rng = np.random.default_rng(0)
    results: Dict[int, List[int]] = {}
    with StreamingServer(engine, max_batch=sessions) as server:
        def client(i: int, prompt: np.ndarray) -> None:
            sid = server.submit(prompt, max_new)
            results[i] = list(server.stream(sid))

        threads = [
            threading.Thread(
                target=client,
                args=(i, rng.integers(0, spec.vocab, size=prompt_len)),
            )
            for i in range(sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        met = server.metrics()
    for i in sorted(results):
        toks = results[i]
        head = " ".join(str(t) for t in toks[:8])
        more = f" ... (+{len(toks) - 8})" if len(toks) > 8 else ""
        print(f"session {i}: {len(toks)} tokens: {head}{more}")
    print(f"\n{met['sessions']} sessions, {met['tokens']} tokens in "
          f"{met['wall_s']:.2f}s — {met['tokens_per_sec']:.0f} tok/s, "
          f"p50 {met['p50_token_ms']:.2f} ms, "
          f"p95 {met['p95_token_ms']:.2f} ms, "
          f"ttft {met['ttft_ms']:.1f} ms; "
          f"int8 model {ratio:.2f}x smaller than fp32")
    short = [i for i, toks in results.items() if not toks]
    if short:
        print(f"error: sessions {short} produced no tokens",
              file=sys.stderr)
        return 1
    return 0


def _cmd_timeline(args: argparse.Namespace) -> None:
    from repro.models.config import MODEL_CONFIG_TABLE
    from repro.sim.gantt import render_timeline
    from repro.systems import RunSetting, SuperOffloadSystem, ZeROOffload
    from repro.training.cluster import gh200_cluster

    setting = RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(1),
                         global_batch=8)
    for system in (ZeROOffload(), SuperOffloadSystem()):
        est = system.best_estimate(setting)
        print(f"\n--- {system.display_name} (steady-state iteration) ---")
        print(render_timeline(est.trace, ["gpu", "d2h", "cpu", "h2d"],
                              width=96, window=est.steady_window))


COMMANDS: Dict[str, Callable[[argparse.Namespace], "int | None"]] = {
    "table1": _cmd_table1,
    "fig4": _cmd_fig4,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "fig13": _cmd_fig13,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig14": _cmd_fig14,
    "fig15": _cmd_fig15,
    "timeline": _cmd_timeline,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "tune": _cmd_tune,
    "checkpoint": _cmd_checkpoint,
    "serve": _cmd_serve,
}

#: Commands that write files (or run a live server); excluded from
#: ``repro all``.
_FILE_WRITING = {"trace", "bench", "profile", "tune", "checkpoint",
                 "serve"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate SuperOffload paper artifacts.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(COMMANDS) + ["all", "list"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="trim the heavier sweeps for a fast smoke run",
    )
    parser.add_argument(
        "--chips", type=int, default=None,
        help="restrict fig12 to one superchip count",
    )
    parser.add_argument(
        "--out", default=".",
        help="output directory for 'trace' (trace.json + events.jsonl) "
             "and 'bench' (BENCH_substrate.json)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="kernel-pool thread count for the executor bench sections "
             "(default: max(2, host cores))",
    )
    parser.add_argument(
        "--sections", default=None,
        help="comma-separated subset of bench sections to run "
             "(default: all; e.g. --sections parallel_step,zero_pipeline)",
    )
    parser.add_argument(
        "--compare-sim", action="store_true",
        help="profile: also compare the measured phase shares against "
             "the SuperOffload simulator's predicted timeline",
    )
    parser.add_argument(
        "--tuned", action="store_true",
        help="bench: run under the host tuning profile and A/B every "
             "section against the registry defaults",
    )
    parser.add_argument(
        "--profile", default=None,
        help="tune/bench --tuned: tuning-profile path (tune default: "
             "~/.repro/tune.json; bench default: $REPRO_TUNE_PROFILE > "
             "./.repro/tune.json > ~/.repro/tune.json)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="bench: committed BENCH_substrate.json to diff speedups "
             "against (default: ./BENCH_substrate.json if present)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="bench: exit non-zero when any section/size regresses below "
             "the baseline speedup by more than --tolerance",
    )
    parser.add_argument(
        "--sessions", type=int, default=8,
        help="serve: concurrent streaming client sessions (default 8)",
    )
    parser.add_argument(
        "--prompt-tokens", type=int, default=16,
        help="serve: prompt length per session (default 16)",
    )
    parser.add_argument(
        "--max-new-tokens", type=int, default=32,
        help="serve: generation budget per session (default 32)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="bench --strict: allowed absolute speedup drop vs the "
             "baseline before a row counts as a regression (default 0.05)",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        print("available artifacts:", ", ".join(sorted(COMMANDS)), "| all")
        return 0
    names = (
        sorted(set(COMMANDS) - _FILE_WRITING)
        if args.artifact == "all"
        else [args.artifact]
    )
    rc = 0
    for name in names:
        rc = max(rc, COMMANDS[name](args) or 0)
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
