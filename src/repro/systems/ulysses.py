"""Ulysses sequence parallelism and SuperOffload-Ulysses (§4.7, §5.3).

Vanilla DeepSpeed-Ulysses shards the *sequence* across ranks and exchanges
shards around attention with all-to-alls; its model states stay on the GPU
(parameters and gradients unsharded, optimizer ZeRO-1-partitioned), which
is the "fixed GPU memory consumption" the paper identifies as the sequence-
length ceiling.  SuperOffload-Ulysses keeps the same compute/communication
structure but pushes optimizer states and (weight-flow) most weights to the
Grace CPU, handing nearly all of HBM to activations — the source of the
longer trainable sequences in Fig. 12.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.policy import WeightPolicy
from repro.models.estimators import activation_bytes
from repro.sim import calibration
from repro.sim.engine import Task
from repro.systems.base import ExecutionChoice, RunSetting, TrainingSystem
from repro.systems.superoffload import SuperOffloadSystem


def _seq_shard(setting: RunSetting) -> int:
    world = setting.world
    if setting.seq % world:
        raise ValueError(
            f"sequence {setting.seq} not divisible by world {world}"
        )
    return setting.seq // world


def _sp_fwd_bwd(
    system: TrainingSystem, setting: RunSetting, choice: ExecutionChoice
) -> Tuple[float, float]:
    """(fwd, bwd) per-rank seconds under sequence parallelism.

    Dense and attention FLOPs both divide by the SP degree (tokens shard;
    heads shard inside attention).
    """
    fwd, bwd = system.fwd_bwd_times(
        setting, choice, shard=1.0 / setting.world,
        tokens_factor=1.0 / setting.world,
    )
    return fwd, bwd


def _a2a_exposed(
    system: TrainingSystem, setting: RunSetting, choice: ExecutionChoice
) -> float:
    """Exposed all-to-all seconds per pass (forward; backward mirrors it).

    Four exchanges per layer (q, k, v in; context out), each carrying the
    rank's token shard at fp16; half hides behind attention compute.
    """
    coll = system._collectives(setting)
    tokens_rank = choice.micro_batch * _seq_shard(setting)
    per_call = 2 * tokens_rank * setting.config.hidden  # fp16 bytes
    per_layer = 4 * coll.all_to_all(int(per_call))
    return 0.5 * per_layer * setting.config.n_layers


class UlyssesSP(TrainingSystem):
    """Vanilla DeepSpeed-Ulysses (ZeRO-1 base) performance model."""

    data_parallel = False
    sequence_parallel = True

    def __init__(self) -> None:
        super().__init__("ulysses", "Ulysses-SP")

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        psi, n = setting.psi, setting.world
        # fp16 params + fp16 grads unsharded; optimizer states ZeRO-1.
        return 4 * psi + 12 * psi / n

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return 0.0

    def activation_state_bytes(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> float:
        shard = _seq_shard(setting)
        return activation_bytes(
            setting.config,
            choice.micro_batch,
            shard,
            checkpointing=choice.checkpointing,
            flash_attention=setting.flash_attention,
        )

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        gpu = self._gpu_compute(setting)
        coll = self._collectives(setting)
        psi, n = setting.psi, setting.world
        fwd_t, bwd_t = _sp_fwd_bwd(self, setting, choice)
        a2a_t = _a2a_exposed(self, setting, choice)
        ar_t = coll.all_reduce(2 * psi)  # gradient sync across SP ranks
        step_t = gpu.adam_step_time(int(psi / n), "gpu")
        ag_t = coll.all_gather(2 * psi)
        tasks: List[Task] = []
        prev: List[Task] = []
        for it in range(n_iters):
            local_prev = list(prev)
            last: Task | None = None
            for a in range(choice.grad_accum):
                fwd = Task(f"it{it}.fwd.m{a}", "gpu",
                           fwd_t + calibration.MICROBATCH_OVERHEAD,
                           deps=tuple(local_prev), category="compute")
                a2a_f = Task(f"it{it}.a2a_f.m{a}", "net", a2a_t, deps=(fwd,),
                             category="collective")
                bwd = Task(f"it{it}.bwd.m{a}", "gpu", bwd_t, deps=(a2a_f,),
                           category="compute")
                a2a_b = Task(f"it{it}.a2a_b.m{a}", "net", a2a_t, deps=(bwd,),
                             category="collective")
                tasks.extend([fwd, a2a_f, bwd, a2a_b])
                local_prev = [a2a_b]
                last = a2a_b
            assert last is not None
            ar = Task(f"it{it}.gradsync", "net", ar_t, deps=(last,),
                      category="collective")
            step = Task(f"it{it}.step", "gpu", step_t, deps=(ar,),
                        category="optimizer")
            ag = Task(f"it{it}.param_ag", "net", ag_t, deps=(step,),
                      category="collective")
            tasks.extend([ar, step, ag])
            prev = [ag]
        return tasks


class SuperOffloadUlysses(SuperOffloadSystem):
    """SuperOffload + Ulysses-SP (§4.7): sequence-parallel compute with the
    full offloading stack underneath."""

    data_parallel = False
    sequence_parallel = True

    def __init__(self) -> None:
        super().__init__(name="superoffload_ulysses",
                         display="SuperOffload-Ulysses")

    def activation_state_bytes(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> float:
        shard = _seq_shard(setting)
        return activation_bytes(
            setting.config,
            choice.micro_batch,
            shard,
            checkpointing=choice.checkpointing,
            flash_attention=setting.flash_attention,
        )

    def _weight_policy(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> WeightPolicy:
        # Long-sequence training is exactly the weight-flow regime (§4.2):
        # the adaptive policy sees the seq-sharded activation footprint.
        decision = self._policy(setting).decide(
            setting.config,
            choice.micro_batch,
            _seq_shard(setting),
            checkpointing=choice.checkpointing,
        )
        return decision.policy

    def fwd_bwd_times(
        self,
        setting: RunSetting,
        choice: ExecutionChoice,
        shard: float = 1.0,
        tokens_factor: float = 1.0,
        hidden_factor: float = 1.0,
    ) -> Tuple[float, float]:
        """Sequence-parallel compute plus the exposed all-to-all share.

        The sharding factors are fixed by the SP degree (callers' values
        are ignored); the a2a exposure is folded into the compute durations
        so the bucket-level SuperOffload schedule stays unchanged.
        """
        fwd, bwd = super().fwd_bwd_times(
            setting, choice, shard=1.0 / setting.world,
            tokens_factor=1.0 / setting.world,
        )
        a2a = _a2a_exposed(self, setting, choice)
        return fwd + a2a, bwd + a2a


def max_sequence_tokens(
    system: TrainingSystem,
    setting_proto: RunSetting,
    max_tokens: int = 2**21,
) -> int:
    """Largest power-of-two sequence length the system can train (Fig. 12).

    Probes micro-batch 1 with activation checkpointing at doubling sequence
    lengths from 16K up to ``max_tokens``.
    """
    from dataclasses import replace

    best = 0
    seq = 16384
    while seq <= max_tokens:
        setting = replace(setting_proto, seq=seq)
        choice = ExecutionChoice(1, 1, checkpointing=True)
        try:
            if system.feasible(setting, choice):
                best = seq
        except ValueError:
            pass
        seq *= 2
    return best
