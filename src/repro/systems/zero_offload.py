"""ZeRO-Offload performance model (Appendix B; §3 Figs. 3-4).

The PCIe-era design: fp16 weights stationary on the GPU, gradients bucketed
to the CPU during backward, and the *synchronize-then-execute* optimizer —
the CPU must see every gradient (global norm, NaN scan) before stepping,
and the next forward waits for every updated fp16 parameter to return.
Both synchronizations, plus the pageable transfer-then-cast path (§4.5) and
the ARM-compiled CPU-Adam kernel, expose 40-50% GPU idle time per iteration
on a superchip (Fig. 4).
"""

from __future__ import annotations

from typing import List

from repro.sim import calibration
from repro.sim.engine import Task
from repro.systems.base import ExecutionChoice, RunSetting, TrainingSystem


class ZeROOffload(TrainingSystem):
    """ZeRO-2 + CPU offload of gradients and optimizer states."""

    def __init__(self) -> None:
        super().__init__("zero_offload", "ZeRO-Offload")

    # GPU: full fp16 params + contiguous fp16 gradient buffer + the rank's
    # gradient partition working copy.  CPU: fp32 master/m/v (12), fp32
    # gradient buffer (4), pinned fp16 staging for params and grads (4) —
    # all sharded by the DP degree.
    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        psi, n = setting.psi, setting.world
        return 4 * psi + 2 * psi / n

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return 20 * setting.psi / setting.world

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        psi, n = setting.psi, setting.world
        link = setting.cluster.node.c2c
        cpu = self._cpu_compute(setting)
        cpu_dev = setting.cluster.node.chip.cpu
        coll = self._collectives(setting)
        fwd_t, bwd_t = self.fwd_bwd_times(setting, choice)

        shard = psi / n
        n_chunks = self.sched_chunks(
            max(1, int(2 * psi // calibration.BUCKET_BYTES))
        )
        grad_fp16 = 2 * shard / n_chunks          # per-chunk D2H payload
        param_fp16 = 2 * shard / n_chunks         # per-chunk H2D payload
        d2h_t = link.transfer_time(int(grad_fp16), pinned=False)
        h2d_t = link.transfer_time(int(param_fp16), pinned=False)
        rs_t = coll.reduce_scatter(int(2 * psi / n_chunks))
        # CPU-side fp16<->fp32 casts run at DDR bandwidth (§4.5): grads in,
        # params out, 1.5x fp32 traffic each.
        cast_t = 1.5 * (4 * shard / n_chunks) / (cpu_dev.mem_bandwidth * 0.75)
        step_t = cpu.adam_step_time(int(shard / n_chunks), "cpu_adam")

        tasks: List[Task] = []
        prev_uploads: List[Task] = []
        for it in range(n_iters):
            # Accumulation loop; gradients offload on the boundary micro-batch.
            head: List[Task] = list(prev_uploads)
            for a in range(choice.grad_accum - 1):
                fwd = Task(f"it{it}.fwd.m{a}", "gpu",
                           fwd_t + calibration.MICROBATCH_OVERHEAD,
                           deps=tuple(head), category="compute")
                bwd = Task(f"it{it}.bwd.m{a}", "gpu", bwd_t, deps=(fwd,),
                           category="compute")
                tasks.extend([fwd, bwd])
                head = [bwd]
            last = choice.grad_accum - 1
            fwd = Task(f"it{it}.fwd.m{last}", "gpu",
                       fwd_t + calibration.MICROBATCH_OVERHEAD,
                       deps=tuple(head), category="compute")
            tasks.append(fwd)
            bwd_chunks: List[Task] = []
            prev_task: Task = fwd
            for c in range(n_chunks):
                bc = Task(f"it{it}.bwd.m{last}.c{c}", "gpu", bwd_t / n_chunks,
                          deps=(prev_task,), category="compute")
                tasks.append(bc)
                bwd_chunks.append(bc)
                prev_task = bc
            # Per-bucket: (reduce-scatter when DP) then pageable D2H.
            d2h_tasks: List[Task] = []
            for c, bc in enumerate(bwd_chunks):
                deps: tuple = (bc,)
                if n > 1:
                    rs = Task(f"it{it}.rs.c{c}", "net", rs_t, deps=(bc,),
                              category="collective")
                    tasks.append(rs)
                    deps = (rs,)
                mv = Task(f"it{it}.d2h.c{c}", "d2h", d2h_t, deps=deps,
                          category="transfer")
                tasks.append(mv)
                d2h_tasks.append(mv)
            # STE: the optimizer waits for ALL gradients (global norm /
            # NaN scan), then casts + steps + casts back, chunk-pipelined
            # with the parameter upload.
            norm = Task(f"it{it}.global_norm", "cpu", 4 * shard
                        / (cpu_dev.mem_bandwidth * 0.8),
                        deps=tuple(d2h_tasks), category="optimizer")
            tasks.append(norm)
            uploads: List[Task] = []
            prev_cpu: Task = norm
            for c in range(n_chunks):
                st = Task(f"it{it}.step.c{c}", "cpu",
                          2 * cast_t + step_t, deps=(prev_cpu,),
                          category="optimizer")
                up = Task(f"it{it}.h2d.c{c}", "h2d", h2d_t, deps=(st,),
                          category="transfer")
                tasks.extend([st, up])
                uploads.append(up)
                prev_cpu = st
            if n > 1:
                ag = Task(f"it{it}.allgather", "net",
                          coll.all_gather(2 * psi), deps=tuple(uploads),
                          category="collective")
                tasks.append(ag)
                prev_uploads = [ag]
            else:
                prev_uploads = [uploads[-1]]
        return tasks
