"""ZeRO-Infinity performance model, CPU-offload mode (Appendix B).

ZeRO-3 plus full model-state offload: parameters stream from host memory
for every forward and backward pass at sub-module granularity.  Its chunk
sizes sit far left of the Fig. 7 saturation knee ("bandwidth can drop to as
low as 50 GB/s with small tensor sizes", §5.2), each swap carries Python
orchestration overhead, and the optimizer is the synchronous CPU step —
which is why the paper measures it below 50 TFLOPS despite matching
SuperOffload's model *scale* (Fig. 13).
"""

from __future__ import annotations

from typing import List

from repro.sim import calibration
from repro.sim.engine import Task
from repro.systems.base import ExecutionChoice, RunSetting, TrainingSystem

GiB = 1024**3


class ZeROInfinity(TrainingSystem):
    """ZeRO-3 with CPU offload of parameters, gradients, and optimizer.

    Args:
        nvme: spill the 12-bytes/param optimizer states to node-local NVMe
            (the tier §2.2 describes; the paper's evaluation disables it
            for fair comparison, our extension experiment measures it).
            Host memory then only holds fp16 params, fp32 gradients, and
            the staging buffers; every optimizer step streams the states
            through the NVMe link.
    """

    FLOW_BUFFER_BYTES = 3 * GiB  # live gathered modules + prefetch ring

    def __init__(self, nvme: bool = False) -> None:
        name = "zero_infinity_nvme" if nvme else "zero_infinity"
        display = "ZeRO-Infinity (NVMe)" if nvme else "ZeRO-Infinity"
        super().__init__(name, display)
        self.nvme = nvme

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return self.FLOW_BUFFER_BYTES

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        # fp16 params (2) + fp32 grads (4) + optimizer (12) per rank share;
        # with NVMe the optimizer states leave host memory.
        per_param = 6 if self.nvme else 18
        return per_param * setting.psi / setting.world

    def nvme_state_bytes(self, setting: RunSetting) -> float:
        """Optimizer-state bytes parked on NVMe per superchip."""
        if not self.nvme:
            return 0.0
        return 12 * setting.psi / setting.world

    def feasible(self, setting: RunSetting, choice: ExecutionChoice) -> bool:
        from repro.hardware.registry import NVME_CAPACITY

        if not super().feasible(setting, choice):
            return False
        return self.nvme_state_bytes(setting) <= NVME_CAPACITY

    def _swap_time(self, nbytes: float, setting: RunSetting) -> float:
        """Host<->device stream time at ZeRO-Infinity's chunk granularity."""
        link = setting.cluster.node.c2c
        chunk = calibration.ZERO_INFINITY_CHUNK_BYTES
        n_chunks = max(1, int(nbytes // chunk))
        per_chunk = (
            link.transfer_time(chunk, pinned=True)
            + calibration.ZERO_INFINITY_SWAP_OVERHEAD
        )
        return n_chunks * per_chunk

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        psi, n = setting.psi, setting.world
        cpu = self._cpu_compute(setting)
        cpu_dev = setting.cluster.node.chip.cpu
        coll = self._collectives(setting)
        fwd_t, bwd_t = self.fwd_bwd_times(setting, choice)
        overlap = calibration.ZERO_INFINITY_OVERLAP

        # Per micro-batch each rank fetches its gathered parameters for
        # forward and again for backward (2 psi fp16 each, world-divided
        # then re-gathered; the host link sees 2 psi / n per rank).
        fetch_exposed = self._swap_time(2 * psi / n, setting) * (1 - overlap)
        gather_t = coll.all_gather(2 * psi) * (1 - overlap)
        grad_out = self._swap_time(4 * psi / n, setting)
        rs_t = coll.reduce_scatter(2 * psi)
        shard = psi / n
        cast_t = 1.5 * (4 * shard) / (cpu_dev.mem_bandwidth * 0.75)
        step_t = cpu.adam_step_time(int(shard), "cpu_adam")
        if self.nvme:
            # Every step streams master/m/v from NVMe and writes them back:
            # 24 bytes/param of drive traffic at sequential bandwidth.
            from repro.hardware.bandwidth import BandwidthModel
            from repro.hardware.registry import NVME

            nvme_link = BandwidthModel(NVME)
            step_t += nvme_link.transfer_time(int(24 * shard))

        tasks: List[Task] = []
        prev: List[Task] = []
        for it in range(n_iters):
            local_prev = list(prev)
            last_bwd: Task | None = None
            for a in range(choice.grad_accum):
                f_fetch = Task(f"it{it}.fetch_fwd.m{a}", "h2d", fetch_exposed,
                               deps=tuple(local_prev), category="transfer")
                f_gather = Task(f"it{it}.gather_fwd.m{a}", "net", gather_t,
                                deps=(f_fetch,), category="collective")
                fwd = Task(f"it{it}.fwd.m{a}", "gpu",
                           fwd_t + calibration.MICROBATCH_OVERHEAD,
                           deps=(f_gather,), category="compute")
                b_fetch = Task(f"it{it}.fetch_bwd.m{a}", "h2d", fetch_exposed,
                               deps=(fwd,), category="transfer")
                b_gather = Task(f"it{it}.gather_bwd.m{a}", "net", gather_t,
                                deps=(b_fetch,), category="collective")
                bwd = Task(f"it{it}.bwd.m{a}", "gpu", bwd_t,
                           deps=(b_gather,), category="compute")
                tasks.extend([f_fetch, f_gather, fwd, b_fetch, b_gather, bwd])
                local_prev = [bwd]
                last_bwd = bwd
            assert last_bwd is not None
            deps: tuple = (last_bwd,)
            if n > 1:
                rs = Task(f"it{it}.reduce_scatter", "net", rs_t,
                          deps=deps, category="collective")
                tasks.append(rs)
                deps = (rs,)
            g_out = Task(f"it{it}.grad_d2h", "d2h", grad_out, deps=deps,
                         category="transfer")
            # Synchronous CPU optimizer; updated params stay host-side (the
            # next iteration's fetches pick them up), so no bulk upload.
            step = Task(f"it{it}.step", "cpu", cast_t + step_t, deps=(g_out,),
                        category="optimizer")
            tasks.extend([g_out, step])
            prev = [step]
        return tasks
