"""FSDP with CPU offload, performance model (Appendix B).

PyTorch FSDP's CPU offload keeps FP32 shards host-side and moves each
FlatParameter synchronously around its use — pageable transfers, a stream
synchronization per module, and an optimizer step driven through PyTorch's
native per-tensor CPU Adam.  The paper measures it under 15 TFLOPS on
GH200 (§5.2), dominated by the unfused optimizer.
"""

from __future__ import annotations

from typing import List

from repro.sim import calibration
from repro.sim.engine import Task
from repro.systems.base import ExecutionChoice, RunSetting, TrainingSystem

GiB = 1024**3


class FSDPOffload(TrainingSystem):
    """Fully Sharded Data Parallel + CPU offload."""

    FLOW_BUFFER_BYTES = 3 * GiB

    def __init__(self) -> None:
        super().__init__("fsdp_offload", "FSDP-Offload")

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return self.FLOW_BUFFER_BYTES

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        # fp32 params (4) + fp32 grads (4) + moments (8) + staging (2).
        return 18 * setting.psi / setting.world

    def _blocking_stream(self, nbytes: float, setting: RunSetting) -> float:
        """Pageable, chunked, synchronized host<->device traffic."""
        link = setting.cluster.node.c2c
        chunk = calibration.FSDP_CHUNK_BYTES
        n_chunks = max(1, int(nbytes // chunk))
        return n_chunks * link.transfer_time(chunk, pinned=False)

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        psi, n = setting.psi, setting.world
        cfg = setting.config
        cpu = self._cpu_compute(setting)
        coll = self._collectives(setting)
        fwd_t, bwd_t = self.fwd_bwd_times(setting, choice)

        sync_t = calibration.FSDP_MODULE_SYNC_OVERHEAD * cfg.n_layers
        # FP32 payloads: shard up for fwd and bwd, gradients back down.
        fetch_t = self._blocking_stream(4 * psi / n, setting) + sync_t
        gather_t = coll.all_gather(4 * psi)
        grad_out = self._blocking_stream(4 * psi / n, setting) + sync_t
        rs_t = coll.reduce_scatter(4 * psi)
        step_t = cpu.adam_step_time(int(psi / n), "pt_cpu_per_tensor")

        tasks: List[Task] = []
        prev: List[Task] = []
        for it in range(n_iters):
            local_prev = list(prev)
            last: Task | None = None
            for a in range(choice.grad_accum):
                f_up = Task(f"it{it}.fetch_fwd.m{a}", "h2d", fetch_t,
                            deps=tuple(local_prev), category="transfer")
                f_ag = Task(f"it{it}.gather_fwd.m{a}", "net", gather_t,
                            deps=(f_up,), category="collective")
                fwd = Task(f"it{it}.fwd.m{a}", "gpu",
                           fwd_t + calibration.MICROBATCH_OVERHEAD,
                           deps=(f_ag,), category="compute")
                b_up = Task(f"it{it}.fetch_bwd.m{a}", "h2d", fetch_t,
                            deps=(fwd,), category="transfer")
                b_ag = Task(f"it{it}.gather_bwd.m{a}", "net", gather_t,
                            deps=(b_up,), category="collective")
                bwd = Task(f"it{it}.bwd.m{a}", "gpu", bwd_t,
                           deps=(b_ag,), category="compute")
                rs = Task(f"it{it}.rs.m{a}", "net", rs_t, deps=(bwd,),
                          category="collective")
                g_out = Task(f"it{it}.grad_d2h.m{a}", "d2h", grad_out,
                             deps=(rs,), category="transfer")
                tasks.extend([f_up, f_ag, fwd, b_up, b_ag, bwd, rs, g_out])
                local_prev = [g_out]
                last = g_out
            assert last is not None
            step = Task(f"it{it}.step", "cpu", step_t, deps=(last,),
                        category="optimizer")
            tasks.append(step)
            prev = [step]
        return tasks
