"""Common machinery for the training-system performance models.

Every system (PyTorch-DDP, Megatron, ZeRO-2/3, ZeRO-Offload, ZeRO-Infinity,
FSDP-offload, SuperOffload, the Ulysses variants) implements the same
interface: a per-rank memory model and a per-iteration task-graph builder.
The base class turns those into throughput estimates (Figs. 10-12),
max-model-scale searches (Fig. 13), and GPU-utilization traces (Figs. 4/15)
by simulating three iterations and measuring the steady-state period.

The execution-choice search mirrors the paper's methodology (§5.2): when the
target batch does not fit, try (a) smaller micro-batches with gradient
accumulation and (b) activation checkpointing with the largest fitting
micro-batch, and report the better throughput.  Recompute FLOPs are excluded
from effective TFLOPS, as the paper does.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hardware.topology import ClusterTopology
from repro.models.config import MODEL_CONFIG_TABLE, ModelConfig
from repro.models.estimators import (
    activation_bytes,
    flops_per_token,
    param_count,
)
from repro.sim import calibration
from repro.sim.collectives import CollectiveModel
from repro.sim.compute import ComputeModel
from repro.sim.engine import ScheduleSimulator, Task
from repro.sim.trace import Trace

# "gpu" is the main compute stream; "gpu2" a side stream for small cast
# kernels (engines run them on a separate CUDA stream so the compute FIFO
# never stalls on a host round trip).
RESOURCES = ("gpu", "gpu2", "d2h", "h2d", "cpu", "cpuval", "net")

#: Number of simulated iterations; the first warms the pipeline.
N_SIM_ITERS = 3

#: Cap on schedule granularity: real bucket counts beyond this are merged
#: for simulation speed (byte totals are preserved).
MAX_SCHED_CHUNKS = 96


@dataclass(frozen=True)
class RunSetting:
    """One experiment point.

    Attributes:
        config: the model.
        cluster: hardware (world size = number of superchips/GPUs).
        global_batch: total batch across all data-parallel ranks.
        seq: training sequence length.
    """

    config: ModelConfig
    cluster: ClusterTopology
    global_batch: int
    seq: int = 1024

    def __post_init__(self) -> None:
        if self.global_batch < 1 or self.seq < 1:
            raise ValueError("global_batch and seq must be positive")

    @property
    def world(self) -> int:
        return self.cluster.world_size

    @property
    def psi(self) -> int:
        return param_count(self.config)

    @property
    def flash_attention(self) -> bool:
        """Long sequences force flash-style attention (no s^2 activations)."""
        return self.seq > 8192


@dataclass(frozen=True)
class ExecutionChoice:
    """How the global batch is executed on each rank.

    Attributes:
        micro_batch: per-rank micro-batch size.
        grad_accum: accumulation steps (micro_batch * grad_accum * dp = batch).
        checkpointing: full activation checkpointing.
    """

    micro_batch: int
    grad_accum: int
    checkpointing: bool

    def __post_init__(self) -> None:
        if self.micro_batch < 1 or self.grad_accum < 1:
            raise ValueError("micro_batch and grad_accum must be positive")


@dataclass(frozen=True)
class IterationEstimate:
    """A simulated steady-state training iteration.

    Attributes:
        system: system name.
        setting: the experiment point.
        choice: the execution choice used.
        iter_time: steady-state seconds per iteration.
        tflops_per_gpu: effective (recompute-excluded) TFLOPS per GPU.
        mfu: fraction of the GPU's theoretical peak.
        trace: full simulator trace (three iterations).
        steady_window: (t0, t1) of the final simulated iteration, for
            utilization queries.
    """

    system: str
    setting: RunSetting
    choice: ExecutionChoice
    iter_time: float
    tflops_per_gpu: float
    mfu: float
    trace: Trace
    steady_window: Tuple[float, float]

    def gpu_idle_fraction(self) -> float:
        """GPU idle share within the steady-state window (Figs. 4/15)."""
        return self.trace.idle_fraction("gpu", self.steady_window)


class InfeasibleError(RuntimeError):
    """Raised when no execution choice fits the hardware."""


class TrainingSystem(abc.ABC):
    """Interface of a training-system performance model.

    Args:
        name: registry key (e.g. ``"zero_offload"``).
        display_name: label used in benchmark output.
    """

    #: whether the system can shard *data* across ranks (DP-style systems).
    data_parallel = True
    #: sequence-parallel systems divide the sequence, not the batch.
    sequence_parallel = False

    def __init__(self, name: str, display_name: str):
        self.name = name
        self.display_name = display_name

    # ---- memory model -------------------------------------------------------

    @abc.abstractmethod
    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        """Per-GPU resident bytes excluding activations."""

    @abc.abstractmethod
    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        """Per-superchip CPU (host) resident bytes."""

    def activation_state_bytes(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> float:
        """Per-GPU activation residency (systems that shard activations
        override)."""
        return activation_bytes(
            setting.config,
            choice.micro_batch,
            setting.seq,
            checkpointing=choice.checkpointing,
            flash_attention=setting.flash_attention,
        )

    def gpu_budget(self, setting: RunSetting) -> float:
        """Usable HBM bytes per GPU."""
        gpu = setting.cluster.node.chip.gpu
        usable = gpu.mem_capacity - calibration.GPU_RESERVED_BYTES
        return usable * (1.0 - calibration.GPU_HEADROOM_FRACTION)

    def cpu_budget(self, setting: RunSetting) -> float:
        """Usable host DRAM bytes per superchip."""
        cpu = setting.cluster.node.chip.cpu
        return cpu.mem_capacity - calibration.CPU_RESERVED_BYTES

    def feasible(self, setting: RunSetting, choice: ExecutionChoice) -> bool:
        """Whether the choice fits both memory budgets."""
        gpu_total = self.gpu_state_bytes(setting, choice) + (
            self.activation_state_bytes(setting, choice)
        )
        if gpu_total > self.gpu_budget(setting):
            return False
        return self.cpu_state_bytes(setting, choice) <= self.cpu_budget(setting)

    # ---- schedule model -----------------------------------------------------

    @abc.abstractmethod
    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        """Topologically ordered tasks for ``n_iters`` iterations.

        Task names must be prefixed ``"it{k}."`` so the base class can
        measure the steady-state period.
        """

    def extra_resources(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> Tuple[str, ...]:
        """Additional simulator streams this system's schedule uses.

        The default systems run entirely on :data:`RESOURCES`; pipeline-
        parallel systems declare their per-stage compute streams and
        inter-stage links here so :meth:`estimate` registers them.
        """
        return ()

    # ---- shared pricing helpers ---------------------------------------------

    def _gpu_compute(self, setting: RunSetting) -> ComputeModel:
        return ComputeModel(setting.cluster.node.chip.gpu)

    def _cpu_compute(self, setting: RunSetting) -> ComputeModel:
        return ComputeModel(setting.cluster.node.chip.cpu)

    def _collectives(self, setting: RunSetting) -> CollectiveModel:
        return CollectiveModel(setting.cluster)

    def fwd_bwd_times(
        self,
        setting: RunSetting,
        choice: ExecutionChoice,
        shard: float = 1.0,
        tokens_factor: float = 1.0,
        hidden_factor: float = 1.0,
    ) -> Tuple[float, float]:
        """(forward, backward) seconds for ONE micro-batch on one GPU.

        Args:
            shard: fraction of the model FLOPs computed on this rank
                (tensor / sequence parallel systems pass 1/N).
            tokens_factor: fraction of the tokens this rank's GEMMs see
                (sequence parallelism shrinks the M dimension).
            hidden_factor: fraction of the hidden width this rank's GEMMs
                see (tensor parallelism shrinks the N/K dimensions).

        Sharding does not just divide FLOPs — it shrinks the GEMM shapes,
        which lowers tensor-core efficiency; the factors feed the
        efficiency curve.  Backward includes the checkpointing recompute
        forward when enabled.
        """
        cfg = setting.config
        tokens = choice.micro_batch * setting.seq
        # Forward is one third of the fwd+bwd totals (6*psi dense and
        # 12*L*h*s attention FLOPs per token, §4.2 / Megatron accounting).
        dense = 2.0 * setting.psi * tokens * shard
        attn = 4.0 * cfg.n_layers * cfg.hidden * setting.seq * tokens * shard
        gpu = self._gpu_compute(setting)
        eff_tokens = max(1, int(tokens * tokens_factor))
        eff_hidden = max(1, int(cfg.hidden * hidden_factor))
        fwd = gpu.dense_time(dense, eff_tokens, eff_hidden) + (
            gpu.attention_time(attn)
        )
        bwd = 2.0 * fwd
        if choice.checkpointing:
            bwd += fwd  # recompute the forward during backward
        return fwd, bwd

    def effective_flops_per_iter_per_gpu(self, setting: RunSetting) -> float:
        """Recompute-excluded FLOPs each GPU contributes per iteration."""
        total = flops_per_token(setting.config, setting.seq) * (
            setting.global_batch * setting.seq
        )
        return total / setting.world

    # ---- estimation ---------------------------------------------------------

    def estimate(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> IterationEstimate:
        """Simulate the schedule and compute throughput metrics."""
        if not self.feasible(setting, choice):
            raise InfeasibleError(
                f"{self.name}: {setting.config.name} with {choice} does not fit"
            )
        tasks = self.build_schedule(setting, choice, N_SIM_ITERS)
        sim = ScheduleSimulator(
            RESOURCES + tuple(self.extra_resources(setting, choice))
        )
        trace = sim.run(tasks)
        ends: Dict[int, float] = {}
        starts: Dict[int, float] = {}
        for task in tasks:
            it = _iteration_of(task.name)
            ends[it] = max(ends.get(it, 0.0), task.finish or 0.0)
            starts[it] = min(starts.get(it, float("inf")), task.start or 0.0)
        last = N_SIM_ITERS - 1
        iter_time = (ends[last] - ends[0]) / max(1, last)
        if iter_time <= 0:
            raise RuntimeError(f"{self.name}: degenerate schedule (period <= 0)")
        flops = self.effective_flops_per_iter_per_gpu(setting)
        tflops = flops / iter_time / 1e12
        peak = setting.cluster.node.chip.gpu.peak_flops / 1e12
        window = (ends[last] - iter_time, ends[last])
        return IterationEstimate(
            system=self.name,
            setting=setting,
            choice=choice,
            iter_time=iter_time,
            tflops_per_gpu=tflops,
            mfu=tflops / peak,
            trace=trace,
            steady_window=window,
        )

    def candidate_choices(self, setting: RunSetting) -> List[ExecutionChoice]:
        """The paper's two OOM-avoidance strategies, over micro-batch sizes."""
        dp = setting.world if self.data_parallel else 1
        per_rank = max(1, setting.global_batch // dp)
        choices: List[ExecutionChoice] = []
        micro = per_rank
        while micro >= 1:
            accum = max(1, per_rank // micro)
            choices.append(ExecutionChoice(micro, accum, checkpointing=False))
            choices.append(ExecutionChoice(micro, accum, checkpointing=True))
            if micro == 1:
                break
            micro //= 2
        return choices

    def best_estimate(self, setting: RunSetting) -> IterationEstimate:
        """Highest-throughput feasible execution choice (paper §5.2 rule).

        Raises:
            InfeasibleError: nothing fits (the OOM bars of Figs. 10/11).
        """
        best: Optional[IterationEstimate] = None
        for choice in self.candidate_choices(setting):
            if not self.feasible(setting, choice):
                continue
            est = self.estimate(setting, choice)
            if best is None or est.tflops_per_gpu > best.tflops_per_gpu:
                best = est
        if best is None:
            raise InfeasibleError(
                f"{self.name}: {setting.config.name} is out of memory at "
                f"batch {setting.global_batch} on {setting.world} GPU(s)"
            )
        return best

    def max_model_billions(
        self,
        cluster: ClusterTopology,
        global_batch: int | None = None,
        seq: int = 1024,
    ) -> float:
        """Largest Appendix-A model this system can train (Fig. 13).

        Feasibility requires micro-batch 1 (checkpointed or not) to fit.
        """
        best = 0.0
        for billions in sorted(MODEL_CONFIG_TABLE):
            config = MODEL_CONFIG_TABLE[billions]
            batch = global_batch if global_batch is not None else (
                cluster.world_size if self.data_parallel else 1
            )
            setting = RunSetting(config, cluster, global_batch=batch, seq=seq)
            for ckpt in (True, False):
                choice = ExecutionChoice(1, max(1, batch // (
                    cluster.world_size if self.data_parallel else 1
                )), ckpt)
                if self.feasible(setting, choice):
                    best = max(best, billions)
                    break
        return best

    # ---- schedule-building utilities ---------------------------------------

    @staticmethod
    def chunked(total: float, n: int) -> List[float]:
        """Split a duration into ``n`` equal chunks."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return [total / n] * n

    @staticmethod
    def sched_chunks(n_real: int) -> int:
        """Scheduling granularity for ``n_real`` buckets (capped)."""
        return max(1, min(n_real, MAX_SCHED_CHUNKS))


def _iteration_of(task_name: str) -> int:
    if not task_name.startswith("it"):
        raise ValueError(f"task {task_name!r} missing iteration prefix")
    return int(task_name[2 : task_name.index(".")])
