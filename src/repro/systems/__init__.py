"""Training-system performance models: SuperOffload and every baseline the
paper evaluates against (Appendix B), all over the shared simulator."""

from typing import Dict

from repro.systems.base import (
    ExecutionChoice,
    InfeasibleError,
    IterationEstimate,
    RunSetting,
    TrainingSystem,
)
from repro.systems.fsdp_offload import FSDPOffload
from repro.systems.gpu_only import MegatronTP, PyTorchDDP, ZeRO2, ZeRO3
from repro.systems.pipeline_tp import PipelinedTP
from repro.systems.superoffload import SuperOffloadFeatures, SuperOffloadSystem
from repro.systems.ulysses import (
    SuperOffloadUlysses,
    UlyssesSP,
    max_sequence_tokens,
)
from repro.systems.zero_infinity import ZeROInfinity
from repro.systems.zero_offload import ZeROOffload


def build_all_systems() -> Dict[str, TrainingSystem]:
    """Fresh instances of every registered system, keyed by name."""
    systems = [
        PyTorchDDP(),
        MegatronTP(),
        ZeRO2(),
        ZeRO3(),
        ZeROOffload(),
        ZeROInfinity(),
        ZeROInfinity(nvme=True),
        FSDPOffload(),
        SuperOffloadSystem(),
        UlyssesSP(),
        SuperOffloadUlysses(),
        PipelinedTP(),
    ]
    return {s.name: s for s in systems}


def get_system(name: str) -> TrainingSystem:
    """Look up one system by registry name."""
    systems = build_all_systems()
    try:
        return systems[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; known: {sorted(systems)}"
        ) from None


__all__ = [
    "RunSetting",
    "ExecutionChoice",
    "IterationEstimate",
    "InfeasibleError",
    "TrainingSystem",
    "PyTorchDDP",
    "MegatronTP",
    "PipelinedTP",
    "ZeRO2",
    "ZeRO3",
    "ZeROOffload",
    "ZeROInfinity",
    "FSDPOffload",
    "SuperOffloadSystem",
    "SuperOffloadFeatures",
    "UlyssesSP",
    "SuperOffloadUlysses",
    "max_sequence_tokens",
    "build_all_systems",
    "get_system",
]
