"""GPU-only baselines: PyTorch DDP, Megatron tensor parallelism, ZeRO-2 and
ZeRO-3 (Appendix B descriptions).

None of these touch host memory; their ceilings in Fig. 13 come entirely
from HBM, and their throughput pays the optimizer step (and, for the
sharded systems, parameter/gradient collectives) on the GPU critical path.
"""

from __future__ import annotations

from typing import List

from repro.models.estimators import activation_bytes
from repro.sim import calibration
from repro.sim.engine import Task
from repro.systems.base import (
    ExecutionChoice,
    InfeasibleError,
    RunSetting,
    TrainingSystem,
)

GiB = 1024**3


def _accum_loop(
    system: TrainingSystem,
    setting: RunSetting,
    choice: ExecutionChoice,
    it: int,
    deps_head: List[Task],
    shard: float = 1.0,
    per_micro_extra: float = 0.0,
    tokens_factor: float = 1.0,
    hidden_factor: float = 1.0,
) -> List[Task]:
    """Forward+backward tasks for one iteration's accumulation loop.

    Args:
        deps_head: dependencies of the first forward (previous iteration's
            parameter update).
        shard: model fraction computed per rank (TP systems pass 1/degree).
        per_micro_extra: exposed per-micro-batch communication seconds
            (e.g. Megatron's activation all-reduces), appended serially.
    """
    fwd_t, bwd_t = system.fwd_bwd_times(
        setting, choice, shard=shard,
        tokens_factor=tokens_factor, hidden_factor=hidden_factor,
    )
    tasks: List[Task] = []
    prev: List[Task] = list(deps_head)
    for a in range(choice.grad_accum):
        fwd = Task(
            f"it{it}.fwd.m{a}", "gpu", fwd_t + calibration.MICROBATCH_OVERHEAD,
            deps=tuple(prev), category="compute",
        )
        # Split backward so gradient communication can overlap its tail.
        bwd_a = Task(f"it{it}.bwd.m{a}.a", "gpu", bwd_t / 2, deps=(fwd,),
                     category="compute")
        bwd_b = Task(f"it{it}.bwd.m{a}.b", "gpu", bwd_t / 2, deps=(bwd_a,),
                     category="compute")
        tasks.extend([fwd, bwd_a, bwd_b])
        if per_micro_extra > 0:
            comm = Task(
                f"it{it}.tpcomm.m{a}", "net", per_micro_extra,
                deps=(bwd_b,), category="collective",
            )
            tasks.append(comm)
            prev = [comm]
        else:
            prev = [bwd_b]
    return tasks


class PyTorchDDP(TrainingSystem):
    """Standard data parallelism: full replica + GPU optimizer.

    Per-GPU footprint is the heaviest of any system: fp32 params/grads/
    moments, AMP fp16 copies, and DDP's gradient buckets — ~24 bytes/param,
    capping single-GPU scale at 3.5B on 96 GB (Fig. 13).
    """

    DDP_BYTES_PER_PARAM = 24

    def __init__(self) -> None:
        super().__init__("ddp", "PyTorch DDP")

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return self.DDP_BYTES_PER_PARAM * setting.psi

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return 0.0

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        gpu = self._gpu_compute(setting)
        coll = self._collectives(setting)
        allreduce_t = coll.all_reduce(2 * setting.psi)
        step_t = gpu.adam_step_time(setting.psi, "gpu")
        tasks: List[Task] = []
        prev_step: List[Task] = []
        for it in range(n_iters):
            body = _accum_loop(self, setting, choice, it, prev_step)
            tasks.extend(body)
            last_bwd = body[-1]
            half_bwd = body[-2]
            # DDP overlaps the all-reduce with the backward tail.
            ar = Task(f"it{it}.allreduce", "net", allreduce_t,
                      deps=(half_bwd,), category="collective")
            step = Task(f"it{it}.step", "gpu", step_t,
                        deps=(last_bwd, ar), category="optimizer")
            tasks.extend([ar, step])
            prev_step = [step]
        return tasks


class MegatronTP(TrainingSystem):
    """Megatron-style tensor parallelism (optionally hybrid with DP).

    The model (and activations) shard by the TP degree, but every layer's
    forward and backward issue activation all-reduces — cheap over NVLink,
    punishing over Slingshot.  When the world exceeds the TP degree, the
    remaining factor runs data parallelism with a gradient all-reduce over
    the TP-sharded parameters.  The degree is searched for best throughput,
    as the paper does ("we use a MP degree that gives the best
    performance"); feasibility uses the max degree (the scale frontier).
    """

    STATE_BYTES_PER_PARAM = 18  # 16 model states + fp16 working copies

    def __init__(self, tp_degree: int | None = None) -> None:
        super().__init__("megatron", "Megatron-LM (TP)")
        self._fixed_tp = tp_degree

    data_parallel = False  # the candidate-choice search sees the full batch

    def _tp_degree(self, setting: RunSetting) -> int:
        if self._fixed_tp is not None:
            if setting.world % self._fixed_tp:
                raise ValueError(
                    f"tp degree {self._fixed_tp} does not divide world "
                    f"{setting.world}"
                )
            return self._fixed_tp
        return setting.world

    def _dp_degree(self, setting: RunSetting) -> int:
        return setting.world // self._tp_degree(setting)

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return self.STATE_BYTES_PER_PARAM * setting.psi / self._tp_degree(setting)

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return 0.0

    def activation_state_bytes(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> float:
        full = activation_bytes(
            setting.config,
            choice.micro_batch,
            setting.seq,
            checkpointing=choice.checkpointing,
            flash_attention=setting.flash_attention,
        )
        return full / self._tp_degree(setting)

    def candidate_choices(self, setting: RunSetting) -> List[ExecutionChoice]:
        """Per-TP-group batch is the global batch divided by the DP factor."""
        per_group = max(1, setting.global_batch // self._dp_degree(setting))
        choices: List[ExecutionChoice] = []
        micro = per_group
        while micro >= 1:
            accum = max(1, per_group // micro)
            choices.append(ExecutionChoice(micro, accum, checkpointing=False))
            choices.append(ExecutionChoice(micro, accum, checkpointing=True))
            if micro == 1:
                break
            micro //= 2
        return choices

    def best_estimate(self, setting: RunSetting):
        """Search the MP degree jointly with the execution choice."""
        if self._fixed_tp is not None:
            return super().best_estimate(setting)
        best = None
        last_error: Exception | None = None
        tp = 1 if setting.world == 1 else 2
        degrees = []
        while tp <= setting.world:
            if setting.world % tp == 0:
                degrees.append(tp)
            tp *= 2
        if not degrees:
            degrees = [setting.world]
        for degree in degrees:
            variant = MegatronTP(tp_degree=degree)
            try:
                est = variant.best_estimate(setting)
            except InfeasibleError as exc:
                last_error = exc
                continue
            if best is None or est.tflops_per_gpu > best.tflops_per_gpu:
                best = est
        if best is None:
            raise last_error or InfeasibleError(
                f"megatron: {setting.config.name} does not fit"
            )
        return best

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        tp = self._tp_degree(setting)
        dp = self._dp_degree(setting)
        gpu = self._gpu_compute(setting)
        # TP's per-layer activation all-reduces sit on the critical path of
        # every layer; they are small, blocking, and cannot exploit NCCL's
        # hierarchical pipelining the way bulk DP reductions do — price them
        # over the flat bottleneck ring.
        from repro.sim.collectives import CollectiveModel

        tp_coll = CollectiveModel(setting.cluster, hierarchical=False)
        dp_coll = self._collectives(setting)
        cfg = setting.config
        # Two activation all-reduces per layer per pass (fwd and bwd), fp16.
        act_bytes = 2 * choice.micro_batch * setting.seq * cfg.hidden
        per_layer = 2 * tp_coll.all_reduce(act_bytes, participants=tp)
        per_micro_comm = per_layer * cfg.n_layers * 2 if tp > 1 else 0.0
        # The DP replicas of one TP rank live in *different* nodes, so the
        # gradient all-reduce is NIC-bound regardless of group size.
        inter_bw = (setting.cluster.network.link.peak_bandwidth
                    * calibration.COLLECTIVE_EFFICIENCY)
        dp_ar_t = (
            calibration.COLLECTIVE_LATENCY
            + 2 * (dp - 1) / dp * (2 * setting.psi / tp) / inter_bw
            if dp > 1 else 0.0
        )
        step_t = gpu.adam_step_time(int(setting.psi / tp), "gpu")
        tasks: List[Task] = []
        prev_step: List[Task] = []
        for it in range(n_iters):
            body = _accum_loop(
                self, setting, choice, it, prev_step,
                shard=1.0 / tp, per_micro_extra=per_micro_comm,
                hidden_factor=1.0 / tp,
            )
            tasks.extend(body)
            deps: List[Task] = [body[-1]]
            if dp > 1:
                ar = Task(f"it{it}.dp_allreduce", "net", dp_ar_t,
                          deps=(body[-1],), category="collective")
                tasks.append(ar)
                deps = [ar]
            step = Task(f"it{it}.step", "gpu", step_t,
                        deps=tuple(deps), category="optimizer")
            tasks.append(step)
            prev_step = [step]
        return tasks


class ZeRO2(TrainingSystem):
    """ZeRO stage 2: optimizer states and gradients sharded across DP ranks.

    Each GPU still holds the full fp16 parameters plus a contiguous fp16
    gradient buffer; the 12-bytes/param optimizer states divide by the
    world size.
    """

    def __init__(self, name: str = "zero2", display: str = "ZeRO-2") -> None:
        super().__init__(name, display)

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        psi, n = setting.psi, setting.world
        return 4 * psi + 12 * psi / n

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return 0.0

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        gpu = self._gpu_compute(setting)
        coll = self._collectives(setting)
        psi, n = setting.psi, setting.world
        rs_t = coll.reduce_scatter(2 * psi)
        ag_t = coll.all_gather(2 * psi)
        step_t = gpu.adam_step_time(int(psi / n), "gpu")
        tasks: List[Task] = []
        prev: List[Task] = []
        for it in range(n_iters):
            body = _accum_loop(self, setting, choice, it, prev)
            tasks.extend(body)
            rs = Task(f"it{it}.reduce_scatter", "net", rs_t,
                      deps=(body[-2],), category="collective")
            step = Task(f"it{it}.step", "gpu", step_t,
                        deps=(body[-1], rs), category="optimizer")
            ag = Task(f"it{it}.allgather", "net", ag_t,
                      deps=(step,), category="collective")
            tasks.extend([rs, step, ag])
            prev = [ag]
        return tasks


class ZeRO3(TrainingSystem):
    """ZeRO stage 3: parameters sharded too; gathered around each use.

    Prefetch hides most of the gather latency; the live-parameter working
    set (DeepSpeed's ``max_live_parameters``) plus reduce buckets bound the
    extra HBM.
    """

    PREFETCH_OVERLAP = 0.7
    LIVE_PARAM_BYTES = 3 * GiB  # gathered working set + reduce buckets

    def __init__(self) -> None:
        super().__init__("zero3", "ZeRO-3")

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        psi, n = setting.psi, setting.world
        return 16 * psi / n + self.LIVE_PARAM_BYTES

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return 0.0

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        gpu = self._gpu_compute(setting)
        coll = self._collectives(setting)
        psi, n = setting.psi, setting.world
        # Parameters are gathered for forward and again for backward, every
        # micro-batch; prefetch overlaps most of it with compute.
        gather_exposed = coll.all_gather(2 * psi) * (1 - self.PREFETCH_OVERLAP)
        rs_t = coll.reduce_scatter(2 * psi)
        step_t = gpu.adam_step_time(int(psi / n), "gpu")
        tasks: List[Task] = []
        prev: List[Task] = []
        for it in range(n_iters):
            fwd_t, bwd_t = self.fwd_bwd_times(setting, choice)
            local_prev = list(prev)
            for a in range(choice.grad_accum):
                g_f = Task(f"it{it}.gather_fwd.m{a}", "net", gather_exposed,
                           deps=tuple(local_prev), category="collective")
                fwd = Task(f"it{it}.fwd.m{a}", "gpu",
                           fwd_t + calibration.MICROBATCH_OVERHEAD,
                           deps=(g_f,), category="compute")
                g_b = Task(f"it{it}.gather_bwd.m{a}", "net", gather_exposed,
                           deps=(fwd,), category="collective")
                bwd = Task(f"it{it}.bwd.m{a}", "gpu", bwd_t,
                           deps=(g_b,), category="compute")
                tasks.extend([g_f, fwd, g_b, bwd])
                local_prev = [bwd]
            rs = Task(f"it{it}.reduce_scatter", "net", rs_t,
                      deps=tuple(local_prev), category="collective")
            step = Task(f"it{it}.step", "gpu", step_t,
                        deps=(rs,), category="optimizer")
            tasks.extend([rs, step])
            prev = [step]
        return tasks
