"""The composed TPxPPxDP performance model over the 1F1B timeline.

Where :class:`~repro.systems.gpu_only.MegatronTP` folds everything onto
the single ``"gpu"`` stream, this system lays each pipeline stage on its
own simulated resource (``pp.stage{s}``) with inter-stage activation
hops on ``pp.link{s}`` — the plan-aware timeline built by
:func:`repro.sim.engine.build_1f1b_tasks`, the *same* task-graph builder
the substrate's measured replay uses
(:meth:`repro.parallel.pipeline.PipelinedTransformer.measured_bubble_fraction`).
That shared builder is what makes the predicted and measured 1F1B bubble
fractions directly comparable in ``repro profile --compare-sim``.

Axes priced:

* **TP** shrinks per-stage GEMMs (``hidden_factor``) and adds the
  per-layer activation all-reduces on the flat (non-hierarchical) ring,
  serialized into the stage time — Megatron's model, divided over the
  stage's layer share.
* **PP** divides layers across stages; the 1F1B bubble emerges from the
  timeline itself rather than an analytic correction.
* **DP** prices the gradient all-reduce over each rank's parameter shard
  after the drain.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.models.estimators import activation_bytes
from repro.sim import calibration
from repro.sim.collectives import CollectiveModel
from repro.sim.engine import (
    ScheduleSimulator,
    Task,
    build_1f1b_tasks,
    ideal_1f1b_bubble,
    pipeline_bubble_fraction,
)
from repro.systems.base import (
    ExecutionChoice,
    InfeasibleError,
    RunSetting,
    TrainingSystem,
)


class PipelinedTP(TrainingSystem):
    """Megatron-style TP inside 1F1B pipeline stages, DP across groups.

    ``world = tp * pp * dp``; the grad-accumulation count of the
    execution choice doubles as the 1F1B microbatch count ``m``, so the
    bubble fraction the timeline exhibits is the classic
    ``(p-1)/(m+p-1)`` under uniform stages.

    Args:
        tp: tensor-parallel degree inside each stage.
        pp: pipeline stage count.
    """

    STATE_BYTES_PER_PARAM = 18  # 16 model states + fp16 working copies

    #: the candidate-choice search sees the per-DP-group batch
    data_parallel = False

    def __init__(self, tp: int = 1, pp: int = 2) -> None:
        if tp < 1 or pp < 1:
            raise ValueError("tp and pp degrees must be >= 1")
        super().__init__(
            f"pipeline_tp{tp}x{pp}" if (tp, pp) != (1, 2) else "pipeline_tp",
            f"TP{tp} x PP{pp} (1F1B)",
        )
        self.tp = tp
        self.pp = pp

    # -- geometry -----------------------------------------------------------

    def _dp_degree(self, setting: RunSetting) -> int:
        mp = self.tp * self.pp
        if setting.world % mp:
            raise InfeasibleError(
                f"{self.name}: tp*pp = {mp} does not divide world "
                f"{setting.world}"
            )
        return setting.world // mp

    # -- memory model -------------------------------------------------------

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return self.STATE_BYTES_PER_PARAM * setting.psi / (self.tp * self.pp)

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        return 0.0

    def activation_state_bytes(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> float:
        full = activation_bytes(
            setting.config,
            choice.micro_batch,
            setting.seq,
            checkpointing=choice.checkpointing,
            flash_attention=setting.flash_attention,
        )
        # Stage 0 is the residency peak: its 1/pp layer share (TP-divided)
        # holds up to min(m, pp) in-flight microbatch activations under
        # 1F1B's warmup.
        in_flight = min(choice.grad_accum, self.pp)
        return full / (self.tp * self.pp) * in_flight

    def candidate_choices(self, setting: RunSetting) -> List[ExecutionChoice]:
        """Per-DP-group batch; grad_accum is the 1F1B microbatch count."""
        per_group = max(1, setting.global_batch // self._dp_degree(setting))
        choices: List[ExecutionChoice] = []
        micro = per_group
        while micro >= 1:
            accum = max(1, per_group // micro)
            choices.append(ExecutionChoice(micro, accum, checkpointing=False))
            choices.append(ExecutionChoice(micro, accum, checkpointing=True))
            if micro == 1:
                break
            micro //= 2
        return choices

    # -- timeline -----------------------------------------------------------

    def extra_resources(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> Tuple[str, ...]:
        stages = tuple(f"pp.stage{s}" for s in range(self.pp))
        links = tuple(f"pp.link{s}" for s in range(self.pp - 1))
        return stages + links

    def _stage_times(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> Tuple[float, float, float]:
        """(stage forward, stage backward, inter-stage hop) seconds per
        microbatch, TP comm serialized into the stage time."""
        cfg = setting.config
        fwd_t, bwd_t = self.fwd_bwd_times(
            setting, choice,
            shard=1.0 / (self.tp * self.pp),
            hidden_factor=1.0 / self.tp,
        )
        # Per-layer activation all-reduces on the flat ring (same pricing
        # as MegatronTP), for this stage's 1/pp share of the layers; one
        # per pass direction.
        act_bytes = 2 * choice.micro_batch * setting.seq * cfg.hidden
        if self.tp > 1:
            tp_coll = CollectiveModel(setting.cluster, hierarchical=False)
            per_layer = 2 * tp_coll.all_reduce(act_bytes, participants=self.tp)
            stage_comm = per_layer * cfg.n_layers / self.pp
        else:
            stage_comm = 0.0
        fwd = fwd_t + calibration.MICROBATCH_OVERHEAD + stage_comm / 2
        bwd = bwd_t + stage_comm / 2
        # The inter-stage hop moves one microbatch's boundary activation
        # (fp16), TP-sharded, over the intra-node link.
        if self.pp > 1:
            link = setting.cluster.node.gpu_link.link
            hop = (
                calibration.COLLECTIVE_LATENCY
                + (act_bytes / self.tp)
                / (link.peak_bandwidth * calibration.COLLECTIVE_EFFICIENCY)
            )
        else:
            hop = 0.0
        return fwd, bwd, hop

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        dp = self._dp_degree(setting)
        gpu = self._gpu_compute(setting)
        fwd, bwd, hop = self._stage_times(setting, choice)
        # Gradient all-reduce over each rank's 1/(tp*pp) parameter shard;
        # DP replicas of a stage live in different nodes (NIC-bound).
        inter_bw = (setting.cluster.network.link.peak_bandwidth
                    * calibration.COLLECTIVE_EFFICIENCY)
        shard_psi = setting.psi / (self.tp * self.pp)
        dp_ar_t = (
            calibration.COLLECTIVE_LATENCY
            + 2 * (dp - 1) / dp * (2 * shard_psi) / inter_bw
            if dp > 1 else 0.0
        )
        step_t = gpu.adam_step_time(int(shard_psi), "gpu")
        tasks: List[Task] = []
        prev: List[Task] = []
        for it in range(n_iters):
            body = build_1f1b_tasks(
                self.pp, choice.grad_accum, fwd, bwd,
                send_time=hop, iteration=it, deps_head=tuple(prev),
            )
            tasks.extend(body)
            last = body[-1]
            deps: List[Task] = [last]
            if dp > 1:
                ar = Task(f"it{it}.dp_allreduce", "net", dp_ar_t,
                          deps=(last,), category="collective")
                tasks.append(ar)
                deps = [ar]
            # Per-stage shard update; priced once on the shared gpu stream
            # (stages update concurrently in reality — one shard's cost).
            step = Task(f"it{it}.step", "gpu", step_t,
                        deps=tuple(deps), category="optimizer")
            tasks.append(step)
            prev = [step]
        return tasks

    # -- the cross-checked prediction ----------------------------------------

    def predicted_bubble_fraction(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> float:
        """Bubble fraction of one modeled 1F1B iteration.

        This is the number ``repro profile --compare-sim`` holds against
        the substrate's measured replay; under uniform stages it equals
        :func:`~repro.sim.engine.ideal_1f1b_bubble`.
        """
        fwd, bwd, hop = self._stage_times(setting, choice)
        tasks = build_1f1b_tasks(
            self.pp, choice.grad_accum, fwd, bwd, send_time=hop
        )
        sim = ScheduleSimulator(self.extra_resources(setting, choice) or ("gpu",))
        return pipeline_bubble_fraction(sim.run(tasks), self.pp)


__all__ = ["PipelinedTP", "ideal_1f1b_bubble"]
