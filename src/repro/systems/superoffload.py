"""SuperOffload performance model (§4).

The schedule realizes every §4 technique at bucket granularity and lets the
discrete-event simulator discover the overlap:

* adaptive weight policy (§4.2) — weight-flow adds per-chunk weight
  streaming tasks when activations crowd out stationary weights;
* 64 MB bucketization + repartitioning (§4.3) — the optimizer states of the
  last ``n`` buckets stay on the GPU; ``n`` is grid-searched against the
  simulated iteration period, bounded by free HBM;
* speculation-then-validation (§4.4) — CPU steps fire per bucket as
  gradients land (no global-norm gate), validation runs on its own CPU
  stream, and the next forward waits only for the specific parameter bucket
  it consumes;
* superchip-aware casting (§4.5) — FP32 payloads over pinned DMA with
  GPU-side casts, versus the FP16/pageable/CPU-cast path when disabled;
* GraceAdam (§4.6) — the Table 3 kernel model.

Each Table 2 ablation row is this class with one flag flipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.policy import AdaptiveOffloadPolicy, WeightPolicy
from repro.sim import calibration
from repro.sim.engine import ScheduleSimulator, Task
from repro.systems.base import (
    ExecutionChoice,
    RESOURCES,
    RunSetting,
    TrainingSystem,
)

GiB = 1024**3


@dataclass(frozen=True)
class SuperOffloadFeatures:
    """Performance-model feature flags (the Table 2 ablation axes)."""

    grace_adam: bool = True
    superchip_aware_casting: bool = True
    stv: bool = True
    bucket_repartitioning: bool = True


@dataclass
class _Plan:
    """Resolved schedule parameters for one (setting, choice)."""

    weight_policy: WeightPolicy
    n_chunks: int
    n_tail: int
    fwd_t: float
    bwd_t: float
    d2h_t: float
    h2d_t: float
    cast_gpu_t: float
    cpu_step_t: float
    gpu_step_t: float
    weight_fetch_t: float
    rs_t: float
    ag_t: float
    norm_t: float


class SuperOffloadSystem(TrainingSystem):
    """The paper's system, as a simulator schedule builder.

    Args:
        features: ablation flags; defaults to everything on.
        name: registry key override (ablation rows register variants).
    """

    TAIL_CANDIDATES = (0, 1, 2, 4, 8, 16, 32)

    def __init__(
        self,
        features: SuperOffloadFeatures | None = None,
        name: str = "superoffload",
        display: str = "SuperOffload",
    ) -> None:
        super().__init__(name, display)
        self.features = features or SuperOffloadFeatures()

    # ---- memory model -------------------------------------------------------

    def _policy(self, setting: RunSetting) -> AdaptiveOffloadPolicy:
        chip = setting.cluster.node.chip
        return AdaptiveOffloadPolicy(
            gpu=chip.gpu, c2c_bandwidth=chip.c2c.peak_bandwidth
        )

    def _weight_policy(
        self, setting: RunSetting, choice: ExecutionChoice
    ) -> WeightPolicy:
        decision = self._policy(setting).decide(
            setting.config, choice.micro_batch, setting.seq,
            checkpointing=choice.checkpointing,
        )
        return decision.policy

    def gpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        psi, n = setting.psi, setting.world
        buffers = 8 * calibration.BUCKET_BYTES  # staging ring
        if self._weight_policy(setting, choice) is WeightPolicy.STATIONARY:
            # fp16 weights resident; ZeRO-3-style partitioning divides them
            # across ranks in multi-superchip mode (§4.7).
            return 2 * psi / n + buffers
        # Weight-flow: double-buffered layer weights only.
        return 4 * psi / setting.config.n_layers + buffers

    def cpu_state_bytes(self, setting: RunSetting, choice: ExecutionChoice) -> float:
        # fp32 master/m/v (12) + fp16 weight copy (2) + pinned staging (2).
        return 16 * setting.psi / setting.world

    # ---- planning -----------------------------------------------------------

    def _base_plan(self, setting: RunSetting, choice: ExecutionChoice) -> _Plan:
        psi, n = setting.psi, setting.world
        f = self.features
        chip = setting.cluster.node.chip
        # Rank 0's host link: NVLink-C2C under SuperOffload's affine NUMA
        # binding, the slower inter-superchip path if the launcher misplaced
        # the process (§4.7) — the NUMA-binding benchmark flips this.
        link = setting.cluster.node.host_link_for(0)
        gpu = self._gpu_compute(setting)
        cpu = self._cpu_compute(setting)
        coll = self._collectives(setting)
        fwd_t, bwd_t = self.fwd_bwd_times(setting, choice)
        weight_policy = self._weight_policy(setting, choice)

        n_real = max(1, int(2 * psi // calibration.BUCKET_BYTES))
        n_chunks = self.sched_chunks(n_real)
        shard = psi / n
        per_bucket = shard / n_chunks

        if f.superchip_aware_casting:
            payload = int(4 * per_bucket)
            d2h_t = link.transfer_time(payload, pinned=True)
            h2d_t = link.transfer_time(payload, pinned=True)
            cast_gpu_t = 1.5 * payload / (chip.gpu.mem_bandwidth * 0.55)
            cpu_cast_t = 0.0
        else:
            payload = int(2 * per_bucket)
            d2h_t = link.transfer_time(payload, pinned=False)
            h2d_t = link.transfer_time(payload, pinned=False)
            cast_gpu_t = 0.0
            cpu_cast_t = 2 * (1.5 * 4 * per_bucket / (chip.cpu.mem_bandwidth * 0.75))

        kernel = "grace_adam" if f.grace_adam else "cpu_adam"
        cpu_step_t = cpu.adam_step_time(int(per_bucket), kernel) + cpu_cast_t
        gpu_step_t = gpu.adam_step_time(int(per_bucket), "gpu")
        weight_fetch_t = (
            link.transfer_time(int(2 * per_bucket), pinned=True)
            if weight_policy is WeightPolicy.FLOW
            else 0.0
        )
        rs_t = coll.reduce_scatter(int(2 * psi / n_chunks)) if n > 1 else 0.0
        ag_t = coll.all_gather(int(2 * psi / n_chunks)) if n > 1 else 0.0
        norm_t = 4 * shard / (chip.cpu.mem_bandwidth * 0.8)
        return _Plan(
            weight_policy=weight_policy,
            n_chunks=n_chunks,
            n_tail=0,
            fwd_t=fwd_t,
            bwd_t=bwd_t,
            d2h_t=d2h_t,
            h2d_t=h2d_t,
            cast_gpu_t=cast_gpu_t,
            cpu_step_t=cpu_step_t,
            gpu_step_t=gpu_step_t,
            weight_fetch_t=weight_fetch_t,
            rs_t=rs_t,
            ag_t=ag_t,
            norm_t=norm_t,
        )

    def _max_tail(self, setting: RunSetting, choice: ExecutionChoice, plan: _Plan) -> int:
        """Tail buckets whose 12-bytes/param optimizer states fit free HBM."""
        free = self.gpu_budget(setting) - self.gpu_state_bytes(setting, choice) \
            - self.activation_state_bytes(setting, choice)
        per_bucket_state = 12 * (setting.psi / setting.world) / plan.n_chunks
        if per_bucket_state <= 0 or free <= 0:
            return 0
        return max(0, min(plan.n_chunks, int(free // per_bucket_state)))

    def plan(self, setting: RunSetting, choice: ExecutionChoice) -> _Plan:
        """Resolve the full plan, grid-searching the repartitioned tail."""
        plan = self._base_plan(setting, choice)
        if not self.features.bucket_repartitioning or not self.features.stv:
            # Repartitioning presupposes STV: under synchronize-then-execute
            # the GPU waits on the global gate regardless of where the tail
            # buckets' optimizer runs.
            return plan
        max_tail = self._max_tail(setting, choice, plan)
        candidates = sorted(
            {c for c in self.TAIL_CANDIDATES if c <= max_tail} | {0}
        )
        best_n, best_period = 0, None
        for n_tail in candidates:
            trial = _replace_tail(plan, n_tail)
            period = self._simulated_period(setting, choice, trial)
            if best_period is None or period < best_period:
                best_n, best_period = n_tail, period
        return _replace_tail(plan, best_n)

    def _simulated_period(
        self, setting: RunSetting, choice: ExecutionChoice, plan: _Plan
    ) -> float:
        tasks = self._build_from_plan(setting, choice, plan, n_iters=3)
        sim = ScheduleSimulator(RESOURCES)
        sim.run(tasks)
        ends = {}
        for t in tasks:
            it = int(t.name[2 : t.name.index(".")])
            ends[it] = max(ends.get(it, 0.0), t.finish or 0.0)
        return (ends[2] - ends[0]) / 2

    # ---- schedule -----------------------------------------------------------

    def build_schedule(
        self, setting: RunSetting, choice: ExecutionChoice, n_iters: int
    ) -> List[Task]:
        plan = self.plan(setting, choice)
        return self._build_from_plan(setting, choice, plan, n_iters)

    def _build_from_plan(
        self,
        setting: RunSetting,
        choice: ExecutionChoice,
        plan: _Plan,
        n_iters: int,
    ) -> List[Task]:
        f = self.features
        n = setting.world
        B = plan.n_chunks
        tasks: List[Task] = []
        # ready[j]: the task that makes forward chunk j's parameters current
        # (None in iteration 0 — weights start fresh).
        param_ready: List[Optional[Task]] = [None] * B

        for it in range(n_iters):
            # ---- forward: first micro-batch chunked for dependencies ------
            prev: Optional[Task] = None
            fwd_chunks: List[Task] = []
            for j in range(B):
                deps: List[Task] = []
                if prev is not None:
                    deps.append(prev)
                # forward chunk j consumes the parameters of bucket B-1-j
                # (buckets fill in backward order).
                ready = param_ready[B - 1 - j]
                if ready is not None:
                    deps.append(ready)
                if plan.weight_policy is WeightPolicy.FLOW:
                    fetch = Task(
                        f"it{it}.wfetch_fwd.c{j}", "h2d", plan.weight_fetch_t,
                        deps=tuple(d for d in deps if d is not None),
                        category="transfer",
                    )
                    tasks.append(fetch)
                    deps.append(fetch)
                chunk = Task(
                    f"it{it}.fwd.m0.c{j}", "gpu",
                    plan.fwd_t / B + calibration.MICROBATCH_OVERHEAD / B,
                    deps=tuple(deps), category="compute",
                )
                tasks.append(chunk)
                fwd_chunks.append(chunk)
                prev = chunk
            # remaining accumulation micro-batches (full fwd+bwd, on-GPU grads)
            for a in range(1, choice.grad_accum):
                fwd = Task(
                    f"it{it}.fwd.m{a}", "gpu",
                    plan.fwd_t + calibration.MICROBATCH_OVERHEAD,
                    deps=(prev,), category="compute",
                )
                bwd = Task(f"it{it}.bwd.m{a}", "gpu", plan.bwd_t,
                           deps=(fwd,), category="compute")
                if plan.weight_policy is WeightPolicy.FLOW:
                    # each extra pass re-streams the weights; priced as one
                    # bulk fetch the backward must wait on.
                    refetch = Task(
                        f"it{it}.wfetch.m{a}", "h2d",
                        plan.weight_fetch_t * B, deps=(fwd,),
                        category="transfer",
                    )
                    tasks.extend([fwd, refetch])
                    bwd.deps = (fwd, refetch)
                    tasks.append(bwd)
                else:
                    tasks.extend([fwd, bwd])
                prev = bwd

            # ---- boundary backward, bucket by bucket ----------------------
            d2h_tasks: List[Task] = []
            bwd_prev: Task = prev
            uploads: List[Optional[Task]] = [None] * B
            pending: List[Tuple[int, Task]] = []  # STE: steps deferred to gate
            for c in range(B):
                bwd_deps: List[Task] = [bwd_prev]
                if plan.weight_policy is WeightPolicy.FLOW:
                    fetch = Task(
                        f"it{it}.wfetch_bwd.c{c}", "h2d", plan.weight_fetch_t,
                        deps=(bwd_prev,), category="transfer",
                    )
                    tasks.append(fetch)
                    bwd_deps.append(fetch)
                bc = Task(f"it{it}.bwd.m0.c{c}", "gpu", plan.bwd_t / B,
                          deps=tuple(bwd_deps), category="compute")
                tasks.append(bc)
                bwd_prev = bc
                on_gpu_tail = c >= B - plan.n_tail
                move_deps: List[Task] = [bc]
                if n > 1:
                    rs = Task(f"it{it}.rs.c{c}", "net", plan.rs_t,
                              deps=(bc,), category="collective")
                    tasks.append(rs)
                    move_deps = [rs]
                if on_gpu_tail:
                    continue  # handled after the loop (GPU steps)
                if f.superchip_aware_casting and plan.cast_gpu_t > 0:
                    cast = Task(f"it{it}.cast_out.c{c}", "gpu",
                                plan.cast_gpu_t, deps=tuple(move_deps),
                                category="cast")
                    tasks.append(cast)
                    move_deps = [cast]
                mv = Task(f"it{it}.d2h.c{c}", "d2h", plan.d2h_t,
                          deps=tuple(move_deps), category="transfer")
                tasks.append(mv)
                d2h_tasks.append(mv)
                if f.stv:
                    # STV (§4.4): the speculative step fires the moment this
                    # bucket's gradients land — no global-norm gate.
                    st = Task(f"it{it}.cpustep.c{c}", "cpu", plan.cpu_step_t,
                              deps=(mv,), category="optimizer")
                    up = Task(f"it{it}.h2d.c{c}", "h2d", plan.h2d_t,
                              deps=(st,), category="transfer")
                    tasks.extend([st, up])
                    uploads[c] = up
                else:
                    pending.append((c, mv))

            # ---- STE gate (feature-off mode): the classic ZeRO-Offload
            # ordering — global norm over ALL gradients, then the steps.
            if pending:
                gate = Task(
                    f"it{it}.norm_gate", "cpu", plan.norm_t,
                    deps=tuple(mv for _, mv in pending), category="optimizer",
                )
                tasks.append(gate)
                for c, mv in pending:
                    st = Task(f"it{it}.cpustep.c{c}", "cpu", plan.cpu_step_t,
                              deps=(gate, mv), category="optimizer")
                    up = Task(f"it{it}.h2d.c{c}", "h2d", plan.h2d_t,
                              deps=(st,), category="transfer")
                    tasks.extend([st, up])
                    uploads[c] = up

            # ---- GPU tail steps (bucket repartitioning, §4.3) --------------
            for c in range(B - plan.n_tail, B):
                gst = Task(f"it{it}.gpustep.c{c}", "gpu", plan.gpu_step_t,
                           deps=(bwd_prev,), category="optimizer")
                tasks.append(gst)
                uploads[c] = gst

            # ---- post-upload GPU-side work for each returned bucket --------
            # The widen-cast runs on a side stream ("gpu2") so the compute
            # FIFO never stalls on a host round trip it does not depend on.
            for c in range(B - plan.n_tail):
                up = uploads[c]
                assert up is not None
                ready: Task = up
                if f.superchip_aware_casting and plan.cast_gpu_t > 0:
                    back = Task(f"it{it}.cast_in.c{c}", "gpu2",
                                plan.cast_gpu_t, deps=(up,), category="cast")
                    tasks.append(back)
                    ready = back
                if n > 1:
                    ag = Task(f"it{it}.ag.c{c}", "net", plan.ag_t,
                              deps=(ready,), category="collective")
                    tasks.append(ag)
                    ready = ag
                uploads[c] = ready

            # ---- validation (§4.4): off the critical path under STV --------
            # The background process computes the global norm and NaN scan
            # on its own CPU stream; nothing waits on it (rollbacks are the
            # rare exception, priced separately — §5.7 measures them at
            # 0.12% of iterations).
            if f.stv and d2h_tasks:
                val = Task(f"it{it}.validate", "cpuval", plan.norm_t,
                           deps=tuple(d2h_tasks), category="optimizer")
                tasks.append(val)
            if not f.bucket_repartitioning:
                # Without repartitioning the engine keeps ZeRO-Offload's
                # coarse synchronization: the next forward starts only once
                # the parameter return is *complete* (§4.3's critique).
                done = [u for u in uploads if u is not None]
                barrier = Task(f"it{it}.param_barrier", "cpuval", 0.0,
                               deps=tuple(done), category="transfer")
                tasks.append(barrier)
                uploads = [barrier] * B
            param_ready = uploads
        return tasks


def _replace_tail(plan: _Plan, n_tail: int) -> _Plan:
    from dataclasses import replace

    return replace(plan, n_tail=n_tail)
