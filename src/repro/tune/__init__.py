"""Hardware-adaptive autotuning for the kernel substrate.

Three small layers:

- :mod:`repro.tune.registry` — the single source of truth for every
  tunable constant (name, default, valid range, search candidates).
- :mod:`repro.tune.profile` — versioned per-host ``tune.json``
  persistence with graceful degradation to defaults.
- :mod:`repro.tune.runtime` — the process-global active profile and the
  ``tune.value(name, default)`` lookup threaded through the consumers.

The empirical tuner itself lives in :mod:`repro.tune.search` and is
deliberately NOT imported here: search imports the exec/optim/numeric
consumers, and those consumers import this package for their lookups —
importing search eagerly would close that cycle.  The CLI imports it
lazily when ``repro tune`` runs.
"""

from repro.tune.profile import (
    ENV_PROFILE,
    HOME_PROFILE,
    LOCAL_PROFILE,
    TuneProfile,
    default_path,
    host_key,
    load,
    save,
)
from repro.tune.registry import (
    SCHEMA_VERSION,
    TUNABLES,
    Tunable,
    default,
    get,
    is_valid,
    names,
)
from repro.tune.runtime import (
    activate,
    active,
    overridden,
    reset,
    value,
)

__all__ = [
    "ENV_PROFILE",
    "HOME_PROFILE",
    "LOCAL_PROFILE",
    "SCHEMA_VERSION",
    "TUNABLES",
    "Tunable",
    "TuneProfile",
    "activate",
    "active",
    "default",
    "default_path",
    "get",
    "host_key",
    "is_valid",
    "load",
    "names",
    "overridden",
    "reset",
    "save",
    "value",
]
