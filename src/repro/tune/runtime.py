"""The active tuning profile and the lookup consumers call.

Consumers resolve every tunable through :func:`value`::

    min_parallel = tune.value("scale.min_parallel", MIN_PARALLEL_SIMPLE)

With no active profile this returns the passed default unchanged (or
the registry default if the caller passes ``None``), so an untuned host
behaves exactly as before profiles existed — including under tests that
monkeypatch the consumer's module-level constant, since the constant is
read at call time and handed in as the default.

The active profile is process-global.  It is set explicitly
(:func:`activate`), temporarily (:func:`overridden`, the A/B bench
hook), or lazily on the first lookup by the autoloader, which reads
``$REPRO_TUNE_PROFILE`` > ``./.repro/tune.json`` > ``~/.repro/tune.json``
unless ``REPRO_TUNE=0`` disables autoloading.  ``REPRO_TUNE=0`` does
*not* disable explicit activation — the test suite uses exactly that
split to keep host profiles out of every test while still exercising
tuned dispatch on purpose.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.tune import profile as profile_mod
from repro.tune import registry
from repro.tune.profile import TuneProfile

_lock = threading.Lock()
_active: Optional[TuneProfile] = None
#: Tri-state: None = autoload not attempted; True/False = attempted.
_autoload_done = False


def value(
    name: str, default: Optional[int] = None, size: Optional[int] = None
) -> int:
    """The effective value for tunable ``name``.

    Args:
        name: registered tunable name (``KeyError`` if unknown, so a
            typo'd consumer fails loudly rather than silently untuned).
        default: untuned fallback.  Pass the consumer's live constant
            (module global, constructor argument) so monkeypatching and
            explicit overrides keep working; ``None`` falls back to the
            registry default.
        size: problem size for band-resolved entries.
    """
    prof = _current()
    if prof is not None:
        tuned = prof.value(name, size=size)
        if tuned is not None:
            return tuned
    if default is not None:
        registry.get(name)  # validate the name even when untuned
        return default
    return registry.default(name)


def active() -> Optional[TuneProfile]:
    """The currently active profile, after autoload, or ``None``."""
    return _current()


def activate(prof: Optional[TuneProfile]) -> None:
    """Install ``prof`` as the active profile (``None`` deactivates).

    Explicit activation always wins over — and permanently disables —
    the lazy autoloader, so ``activate(None)`` is a guaranteed "run
    untuned from here on".
    """
    global _active, _autoload_done
    with _lock:
        _active = prof
        _autoload_done = True


def reset() -> None:
    """Forget the active profile AND re-arm the autoloader (tests)."""
    global _active, _autoload_done
    with _lock:
        _active = None
        _autoload_done = False


@contextmanager
def overridden(prof: Optional[TuneProfile]) -> Iterator[None]:
    """Run a block under ``prof`` (or untuned for ``None``), then restore.

    The bench harness wraps each A/B arm in this; it is not re-entrant
    across threads (the active profile is process-global) which is fine
    for benchmarking — kernels themselves read tunables on the calling
    thread before fanning out.
    """
    global _active, _autoload_done
    with _lock:
        saved = (_active, _autoload_done)
        _active = prof
        _autoload_done = True
    try:
        yield
    finally:
        with _lock:
            _active, _autoload_done = saved


def _current() -> Optional[TuneProfile]:
    global _active, _autoload_done
    if _autoload_done:
        return _active
    with _lock:
        if not _autoload_done:
            _active = _autoload()
            _autoload_done = True
        return _active


def _autoload() -> Optional[TuneProfile]:
    """One attempt to load the host profile from the default path.

    ``REPRO_TUNE=0`` (or empty) disables the attempt entirely — the
    kill-switch for bisecting "is the profile making this worse" and for
    keeping developer-machine profiles out of test runs.
    """
    if os.environ.get("REPRO_TUNE", "1").strip().lower() in ("0", "off", ""):
        return None
    return profile_mod.load(profile_mod.default_path())
