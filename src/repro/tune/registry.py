"""The tunable registry: every hand-picked constant, in one place.

PRs 2-5 each introduced a fast path guarded by a constant calibrated on
one container — chunk cache tiles, parallel-dispatch crossovers, the
snapshot cutoff, flash block sides, ZeRO bucket sizes, worker counts.
This module is the single source of truth for those numbers: each
:class:`Tunable` records the name, the authoring-time default (which the
consumer modules import back, so untuned behaviour is defined *here*),
the valid range, and the candidate values the autotuner searches over.

The registry deliberately imports nothing from the rest of the
substrate: consumers (``repro.exec``, ``repro.optim``, ``repro.numeric``,
``repro.parallel``) import *from* it, and the tuner
(:mod:`repro.tune.search`) walks :data:`TUNABLES` to know what to
measure.  A profile entry whose name is not registered, or whose value
falls outside ``[lo, hi]``, is rejected at load time — the registry is
also the schema the profile loader validates against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Bumped whenever a tunable's meaning changes incompatibly; persisted
#: profiles carry it and are discarded (with one warning) on mismatch.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Tunable:
    """One empirically tunable constant of the kernel substrate.

    Attributes:
        name: dotted identifier, ``<op>.<param>`` (profile entry key).
        default: authoring-time value — exactly the constant the
            consumer shipped with, so an untuned host behaves as before.
        lo, hi: inclusive validity range; loaded values outside it are
            rejected.
        choices: candidate values the autotuner measures.  For
            ``crossover`` tunables these are the *sizes* probed, and the
            chosen value is the measured crossover size itself.
        kind: ``"crossover"`` (size below which the serial path wins),
            ``"tile"`` (block/tile side or length), or ``"count"``
            (worker count; 0 means auto).
        doc: one line on what the value gates.
        consumer: dotted module that reads the value.
    """

    name: str
    default: int
    lo: int
    hi: int
    choices: Tuple[int, ...]
    kind: str
    doc: str
    consumer: str


def _pow2(lo_bit: int, hi_bit: int) -> Tuple[int, ...]:
    return tuple(1 << b for b in range(lo_bit, hi_bit + 1))


_T = (
    # -- parallel-vs-serial dispatch crossovers (repro.exec.ops) -------
    Tunable(
        "adam.min_parallel", 1 << 15, 1, 1 << 26, _pow2(12, 21),
        "crossover",
        "elements below which the fused Adam step runs inline",
        "repro.exec.ops",
    ),
    Tunable(
        "scale.min_parallel", 1 << 17, 1, 1 << 26, _pow2(13, 22),
        "crossover",
        "elements below which in-place scale runs inline",
        "repro.exec.ops",
    ),
    Tunable(
        "copy.min_parallel", 1 << 17, 1, 1 << 26, _pow2(13, 22),
        "crossover",
        "elements below which the chunked memcpy runs inline",
        "repro.exec.ops",
    ),
    Tunable(
        "cast.min_parallel", 1 << 17, 1, 1 << 26, _pow2(13, 22),
        "crossover",
        "elements below which dtype-converting copies run inline",
        "repro.exec.ops",
    ),
    Tunable(
        "scale_into.min_parallel", 1 << 17, 1, 1 << 26, _pow2(13, 22),
        "crossover",
        "elements below which dst = src * scale runs inline",
        "repro.exec.ops",
    ),
    Tunable(
        "add_scaled.min_parallel", 1 << 17, 1, 1 << 26, _pow2(13, 22),
        "crossover",
        "elements below which dst += src * scale runs inline",
        "repro.exec.ops",
    ),
    Tunable(
        "reduce.min_parallel", 1 << 17, 1, 1 << 26, _pow2(13, 22),
        "crossover",
        "elements below which the fixed-order reduce runs inline",
        "repro.exec.ops",
    ),
    # -- kernel tile geometry ------------------------------------------
    Tunable(
        "adam.cache_tile", 32768, 1 << 10, 1 << 22,
        (8192, 16384, 32768, 65536, 131072),
        "tile",
        "elements per cache sub-tile inside a fused Adam chunk",
        "repro.exec.kernels",
    ),
    Tunable(
        "grace.tile_size", 16384, 1 << 8, 1 << 22,
        (4096, 8192, 16384, 32768, 65536),
        "tile",
        "GraceAdam serial-walk cache tile (the paper's TILE constant)",
        "repro.optim.implementations",
    ),
    Tunable(
        "flash.block_q", 128, 16, 1024, (32, 64, 128, 256),
        "tile",
        "streaming-attention query tile side",
        "repro.numeric.flash",
    ),
    Tunable(
        "flash.block_k", 128, 16, 1024, (32, 64, 128, 256),
        "tile",
        "streaming-attention key tile side",
        "repro.numeric.flash",
    ),
    # -- memory/path cutoffs -------------------------------------------
    Tunable(
        "rollback.snapshot_cutoff", 1 << 20, 1, 1 << 26, _pow2(14, 23),
        "crossover",
        "bucket elements below which snapshot uses per-tensor copies",
        "repro.optim.rollback",
    ),
    Tunable(
        "zero.bucket_elements", 1 << 18, 1 << 10, 1 << 24, _pow2(14, 19),
        "tile",
        "pipelined ZeRO staging bucket size in fp32 elements",
        "repro.parallel.zero",
    ),
    Tunable(
        "zero.min_pipeline", 0, 0, 1 << 26, _pow2(14, 21),
        "crossover",
        "total flat elements below which pipeline=True falls back to "
        "the serial step (0 = always pipeline, the untuned behaviour)",
        "repro.parallel.zero",
    ),
    # -- executor shape -------------------------------------------------
    Tunable(
        "pool.workers", 0, 0, 256, (1, 2, 4, 8),
        "count",
        "default KernelPool thread count (0 = auto: min(4, cpus); "
        "REPRO_EXEC_WORKERS always wins)",
        "repro.exec.pool",
    ),
    # -- model parallelism (repro.parallel.tensor / .pipeline) ---------
    Tunable(
        "tp.gather_crossover", 1 << 16, 1, 1 << 26, _pow2(12, 20),
        "crossover",
        "gathered output elements below which the column-parallel "
        "all-gather takes the broadcast-assemble path (both paths are "
        "bitwise-identical; the tunable shapes modeled traffic)",
        "repro.parallel.tensor",
    ),
    Tunable(
        "pp.microbatches", 4, 1, 64, (1, 2, 4, 8, 16),
        "count",
        "default 1F1B microbatch count per pipeline step (bubble "
        "fraction is (p-1)/(m+p-1); more microbatches shrink it)",
        "repro.parallel.pipeline",
    ),
    Tunable(
        "pp.stage_balance", 0, 0, 8, (0, 1, 2),
        "count",
        "layers shifted off the final pipeline stage (which also owns "
        "the LM head) onto earlier stages to balance stage times",
        "repro.parallel.pipeline",
    ),
    # -- quantized inference path (repro.numeric.lowprec / exec.ops) ---
    Tunable(
        "quant.group_size", 128, 8, 1024, (32, 64, 128, 256),
        "tile",
        "rows per int8 quantization group (scale granularity: smaller "
        "groups cost more scale bytes and smaller batched-matmul "
        "partials but tighten the error bound)",
        "repro.numeric.lowprec",
    ),
    Tunable(
        "quant.dequant_tile", 256, 16, 8192, (64, 128, 256, 512, 1024),
        "tile",
        "output-column tile width of the fused qmatmul (per-thread "
        "dequant slab is group_size x this; sized to stay cache-resident)",
        "repro.exec.ops",
    ),
    # -- paged KV cache (repro.tensors.kvcache) ------------------------
    Tunable(
        "kv.page_tokens", 16, 4, 4096, (8, 16, 32, 64),
        "tile",
        "tokens per KV-cache page (eviction/spill granularity; larger "
        "pages amortize bookkeeping, smaller ones pack ragged sessions)",
        "repro.tensors.kvcache",
    ),
    # -- disk spill tier (repro.tensors.spill) -------------------------
    Tunable(
        "spill.chunk_bytes", 1 << 18, 1 << 12, 1 << 24,
        (1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20),
        "tile",
        "spill extent size in bytes (staging chunk; multiple of 4 KiB)",
        "repro.tensors.spill",
    ),
    Tunable(
        "spill.prefetch_depth", 2, 0, 64, (1, 2, 4, 8),
        "count",
        "buckets of (m, v) extents read ahead by the disk-offloaded "
        "ZeRO step",
        "repro.parallel.zero",
    ),
    Tunable(
        "spill.writer_queue", 16, 1, 1024, (4, 8, 16, 32, 64),
        "count",
        "bound on the spill arena's async I/O queue (backpressure depth)",
        "repro.tensors.spill",
    ),
)

#: name -> :class:`Tunable`, the registry the tuner and profile share.
TUNABLES: Dict[str, Tunable] = {t.name: t for t in _T}


def get(name: str) -> Tunable:
    """The registered tunable, or ``KeyError`` with the known names."""
    try:
        return TUNABLES[name]
    except KeyError:
        raise KeyError(
            f"unknown tunable {name!r}; known: {sorted(TUNABLES)}"
        ) from None


def default(name: str) -> int:
    """The authoring-time default for ``name``."""
    return get(name).default


def is_valid(name: str, value: object) -> bool:
    """Whether ``value`` is a legal persisted value for ``name``."""
    if name not in TUNABLES:
        return False
    if isinstance(value, bool) or not isinstance(value, int):
        return False
    t = TUNABLES[name]
    return t.lo <= value <= t.hi


def names() -> Tuple[str, ...]:
    """All registered tunable names, sorted."""
    return tuple(sorted(TUNABLES))
