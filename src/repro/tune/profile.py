"""Persisted per-host tuning profiles with graceful degradation.

A profile is a JSON document holding, per host, the tuned value for each
registered tunable.  The on-disk schema::

    {
      "schema": 1,
      "hosts": {
        "<hostkey>": {
          "created": "2026-08-08T12:00:00Z",
          "cpu_count": 4,
          "entries": {
            "adam.min_parallel": 65536,
            "flash.block_q": 64,
            "copy.min_parallel": {"default": 131072,
                                  "bands": [[65536, 131072]]}
          }
        }
      }
    }

An entry is either a bare integer or a size-banded dict: ``bands`` is a
list of ``[max_size, value]`` pairs sorted by ``max_size``; a lookup
with ``size=n`` takes the first band with ``n <= max_size`` and the
``default`` above the last band.  The tuner writes a scalar when it
found a crossover, and a band when one dispatch arm won at *every*
probed size — the band caps the claim at the largest size actually
measured, so a quick-budget tune can never mis-steer sizes it skipped.

Loading never crashes a training run.  A corrupt file, a stale schema,
an unknown tunable name, or an out-of-range value degrades to "no
profile" / "skip entry" with a single :mod:`warnings` warning per file —
the substrate then runs on the registry defaults exactly as if no
profile existed.  Resolution order for the autoloaded path:
``$REPRO_TUNE_PROFILE`` > ``./.repro/tune.json`` > ``~/.repro/tune.json``.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.tune import registry

#: Entry value in memory: scalar, or (default, ((max_size, value), ...)).
Banded = Tuple[int, Tuple[Tuple[int, int], ...]]
EntryValue = Union[int, Banded]

HOME_PROFILE = Path("~/.repro/tune.json")
LOCAL_PROFILE = Path(".repro/tune.json")
ENV_PROFILE = "REPRO_TUNE_PROFILE"


def host_key(cpu_count: Optional[int] = None) -> str:
    """Stable identifier for the current host's tuning-relevant shape.

    Tuned values transfer across hosts only if the core geometry does,
    so the key folds in the machine architecture and the CPU count the
    kernels can actually use (the affinity mask, not the box total).
    """
    if cpu_count is None:
        cpu_count = _available_cpus()
    return "{}-{}-cpu{}".format(
        platform.system().lower() or "unknown",
        platform.machine().lower() or "unknown",
        cpu_count,
    )


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class TuneProfile:
    """Tuned values for one host, validated against the registry.

    ``entries`` maps tunable name to a scalar or a banded value; every
    value stored here has already passed :func:`registry.is_valid`, so
    consumers can trust a lookup without re-checking ranges.
    """

    host: str = field(default_factory=host_key)
    cpu_count: int = field(default_factory=_available_cpus)
    created: str = ""
    entries: Dict[str, EntryValue] = field(default_factory=dict)

    def set(self, name: str, value: int) -> None:
        """Record a tuned scalar, rejecting anything out of range."""
        if not registry.is_valid(name, value):
            raise ValueError(
                f"{value!r} is not a valid value for tunable {name!r}"
            )
        self.entries[name] = value

    def set_banded(
        self,
        name: str,
        default: int,
        bands: List[Tuple[int, int]],
    ) -> None:
        """Record a size-banded entry (``bands`` = [(max_size, value)])."""
        if not registry.is_valid(name, default):
            raise ValueError(
                f"{default!r} is not a valid default for tunable {name!r}"
            )
        for max_size, value in bands:
            if max_size <= 0 or not registry.is_valid(name, value):
                raise ValueError(
                    f"band ({max_size}, {value}) invalid for {name!r}"
                )
        ordered = tuple(sorted((int(m), int(v)) for m, v in bands))
        self.entries[name] = (int(default), ordered)

    def value(self, name: str, size: Optional[int] = None) -> Optional[int]:
        """The tuned value for ``name`` (band-resolved), or ``None``."""
        entry = self.entries.get(name)
        if entry is None:
            return None
        if isinstance(entry, int):
            return entry
        default, bands = entry
        if size is not None:
            for max_size, value in bands:
                if size <= max_size:
                    return value
        return default

    def plan(self) -> Dict[str, int]:
        """Deterministic name -> effective scalar for every tunable.

        Banded entries contribute their above-band default.  Two loads
        of the same file always produce the same plan — the determinism
        the test suite pins down.
        """
        out: Dict[str, int] = {}
        for name in registry.names():
            tuned = self.value(name)
            out[name] = registry.default(name) if tuned is None else tuned
        return out

    # -- (de)serialization ---------------------------------------------

    def _entries_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        for name in sorted(self.entries):
            entry = self.entries[name]
            if isinstance(entry, int):
                doc[name] = entry
            else:
                default, bands = entry
                doc[name] = {
                    "default": default,
                    "bands": [[m, v] for m, v in bands],
                }
        return doc

    @staticmethod
    def _entry_from_doc(name: str, raw: Any) -> Optional[EntryValue]:
        """Parse one persisted entry; ``None`` if it fails validation."""
        if registry.is_valid(name, raw):
            return int(raw)
        if isinstance(raw, dict):
            default = raw.get("default")
            bands = raw.get("bands")
            if not registry.is_valid(name, default):
                return None
            if not isinstance(bands, list):
                return None
            parsed: List[Tuple[int, int]] = []
            for band in bands:
                if (
                    not isinstance(band, (list, tuple))
                    or len(band) != 2
                    or isinstance(band[0], bool)
                    or not isinstance(band[0], int)
                    or band[0] <= 0
                    or not registry.is_valid(name, band[1])
                ):
                    return None
                parsed.append((band[0], band[1]))
            return (int(default), tuple(sorted(parsed)))
        return None


def save(profile: TuneProfile, path: Union[str, Path]) -> Path:
    """Merge ``profile`` into the file at ``path`` under its host key.

    Other hosts' sections are preserved, so one ``tune.json`` can serve
    a home directory shared across machines.  The write is atomic
    (temp file + rename) so a crash mid-save can't corrupt an existing
    profile.
    """
    path = Path(path).expanduser()
    doc: Dict[str, Any] = {"schema": registry.SCHEMA_VERSION, "hosts": {}}
    existing = _read_document(path, warn=False)
    if existing is not None:
        doc["hosts"].update(existing.get("hosts", {}))
    doc["hosts"][profile.host] = {
        "created": profile.created,
        "cpu_count": profile.cpu_count,
        "entries": profile._entries_doc(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load(
    path: Union[str, Path], host: Optional[str] = None
) -> Optional[TuneProfile]:
    """The profile for ``host`` (default: this host), or ``None``.

    Missing file, unreadable JSON, wrong schema version, or no section
    for the host all return ``None``; individually invalid entries are
    dropped.  Each degradation warns exactly once (``warnings`` module
    deduplication) and never raises.
    """
    path = Path(path).expanduser()
    doc = _read_document(path, warn=True)
    if doc is None:
        return None
    host = host or host_key()
    section = doc.get("hosts", {}).get(host)
    if not isinstance(section, dict):
        return None
    raw_entries = section.get("entries")
    if not isinstance(raw_entries, dict):
        _warn(f"tune profile {path}: host {host!r} has no entries table")
        return None
    entries: Dict[str, EntryValue] = {}
    dropped: List[str] = []
    for name, raw in raw_entries.items():
        if name not in registry.TUNABLES:
            dropped.append(name)
            continue
        parsed = TuneProfile._entry_from_doc(name, raw)
        if parsed is None:
            dropped.append(name)
            continue
        entries[name] = parsed
    if dropped:
        _warn(
            f"tune profile {path}: ignoring invalid entries {sorted(dropped)}"
            " (unknown name or out-of-range value); defaults apply"
        )
    cpu_count = section.get("cpu_count")
    if isinstance(cpu_count, bool) or not isinstance(cpu_count, int):
        cpu_count = _available_cpus()
    return TuneProfile(
        host=host,
        cpu_count=cpu_count,
        created=str(section.get("created", "")),
        entries=entries,
    )


def _read_document(path: Path, warn: bool) -> Optional[Dict[str, Any]]:
    """The raw profile document, or ``None`` on any defect."""
    if not path.is_file():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        if warn:
            _warn(f"tune profile {path} is unreadable ({exc}); using defaults")
        return None
    if not isinstance(doc, dict):
        if warn:
            _warn(f"tune profile {path} is not a JSON object; using defaults")
        return None
    if doc.get("schema") != registry.SCHEMA_VERSION:
        if warn:
            _warn(
                f"tune profile {path} has schema {doc.get('schema')!r}, "
                f"expected {registry.SCHEMA_VERSION}; using defaults "
                "(re-run 'repro tune' to regenerate)"
            )
        return None
    return doc


def default_path() -> Path:
    """Where the autoloader looks: env var > repo-local > home."""
    env = os.environ.get(ENV_PROFILE)
    if env:
        return Path(env).expanduser()
    local = LOCAL_PROFILE
    if local.is_file():
        return local
    return HOME_PROFILE.expanduser()


class _TuneWarning(UserWarning):
    """Category for profile degradation warnings (filterable)."""


def _warn(message: str) -> None:
    warnings.warn(message, _TuneWarning, stacklevel=3)
