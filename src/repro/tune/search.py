"""The empirical autotuner behind ``repro tune``.

For every registered tunable the tuner runs the real kernels on the
current host and measures, rather than assumes:

* **crossovers** (``*.min_parallel``, ``rollback.snapshot_cutoff``,
  ``zero.min_pipeline``) — both dispatch arms are timed, interleaved, at
  each probe size from the registry's candidate list; the chosen value
  is the smallest size where the parallel/fast arm wins by more than the
  hysteresis margin.  If it never wins in the probed range, no entry is
  written and the authoring default stands — a short quick-budget probe
  must not serialize the large sizes it never looked at.
* **tiles** (``adam.cache_tile``, ``grace.tile_size``,
  ``flash.block_q/k``, ``zero.bucket_elements``) — each candidate is
  timed on a representative large problem; the fastest replaces the
  default only when it wins by the margin.
* **worker count** (``pool.workers``) — pool sizes are raced on the
  fused Adam op; an entry is written only when some count beats the
  auto default by the margin.
* **spill tier** (``spill.chunk_bytes``, ``spill.prefetch_depth``,
  ``spill.writer_queue``) — each candidate drives a real disk-offloaded
  ZeRO step against a tmpdir :class:`SpillArena`; the fastest candidate
  replaces the default only when it wins by the margin *and* its master
  flat matches a resident (non-offloaded) step bit for bit.

Bitwise identity is the gate: an elementwise tunable's candidate is
accepted only after its output is compared bit-for-bit against the
serial ancestor (the flash block sides are the documented exception —
they change the online-softmax reduction order, so they are gated on
fp32 tolerance vs the dense reference plus bitwise determinism across
worker counts).  :func:`validate_profile` then replays the tuned-vs-
default contest end to end — the numbers ``repro tune`` prints and the
CI ``tune-smoke`` geomean assert consumes.

This module imports the exec/optim/numeric/parallel consumers, which in
turn import :mod:`repro.tune` — so nothing in ``repro.tune.__init__``
may import this module; the CLI loads it lazily.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec import kernels, ops
from repro.exec.pool import KernelPool, default_workers, get_pool
from repro.numeric import flash
from repro.numeric.attention import MultiHeadAttention
from repro.optim.adam import AdamConfig
from repro.optim.implementations import CPUAdam, GraceAdam
from repro.optim.rollback import SnapshotRollback
from repro.parallel.zero import ZeroShardedAdam
from repro.tensors.arena import FlatArena
from repro.tune import registry, runtime
from repro.tune.profile import TuneProfile

#: A candidate must beat the incumbent by this fraction to replace it —
#: hysteresis against timing noise, and the guarantee that a tuned host
#: never regresses below ~(1 - margin) of the default configuration.
MARGIN = 0.02

#: Tolerances for the flash block search (same bounds the bench guards).
FLASH_FWD_TOL = 1e-5
FLASH_BWD_TOL = 1e-4


# -- timing -------------------------------------------------------------


def _ab_time(arms: Sequence[Callable[[], None]], repeats: int) -> List[float]:
    """Best-of-``repeats`` seconds per arm, timed in alternating rounds
    so allocator warm-up and clock drift hit every arm equally."""
    best = [float("inf")] * len(arms)
    for _ in range(repeats):
        for i, arm in enumerate(arms):
            t0 = time.perf_counter()
            arm()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _force(name: str, value: int) -> TuneProfile:
    """A single-entry profile pinning ``name`` for one timing arm."""
    prof = TuneProfile()
    prof.set(name, value)
    return prof


def _under(prof: Optional[TuneProfile], op: Callable[[], None]):
    def run() -> None:
        with runtime.overridden(prof):
            op()
    return run


# -- report structures --------------------------------------------------


@dataclass
class TunableOutcome:
    """What the search decided for one tunable."""

    name: str
    default: int
    chosen: Optional[int]          # None = keep the default (no entry)
    kind: str
    measurements: Dict[str, float] = field(default_factory=dict)
    bitwise_ok: bool = True
    note: str = ""
    #: When set, ``chosen`` applies only to sizes <= band_hi (a banded
    #: entry); above the probed range the authoring default stands —
    #: the tuner never claims knowledge about sizes it did not measure.
    band_hi: Optional[int] = None

    @property
    def tuned(self) -> bool:
        return self.chosen is not None and self.chosen != self.default


@dataclass
class ValidationCheck:
    """One tuned-vs-default contest from :func:`validate_profile`."""

    name: str
    size: int
    tuned_ms: float
    default_ms: float
    bitwise: bool

    @property
    def speedup(self) -> float:
        return self.default_ms / self.tuned_ms if self.tuned_ms else 1.0


@dataclass
class TuningReport:
    """Everything one ``repro tune`` run produced."""

    profile: TuneProfile
    outcomes: List[TunableOutcome]
    validation: List[ValidationCheck]
    workers: int

    @property
    def geomean(self) -> float:
        if not self.validation:
            return 1.0
        return math.exp(
            sum(math.log(max(c.speedup, 1e-9)) for c in self.validation)
            / len(self.validation)
        )

    @property
    def all_bitwise(self) -> bool:
        return all(o.bitwise_ok for o in self.outcomes) and all(
            c.bitwise for c in self.validation
        )

    def to_doc(self) -> Dict:
        """JSON-ready summary (``TUNE_report.json``)."""
        return {
            "report": "tune",
            "host": self.profile.host,
            "cpu_count": self.profile.cpu_count,
            "workers": self.workers,
            "geomean_speedup": self.geomean,
            "all_bitwise": self.all_bitwise,
            "outcomes": [
                {
                    "name": o.name,
                    "kind": o.kind,
                    "default": o.default,
                    "chosen": o.chosen,
                    "band_hi": o.band_hi,
                    "tuned": o.tuned,
                    "bitwise_ok": o.bitwise_ok,
                    "measurements": o.measurements,
                    "note": o.note,
                }
                for o in self.outcomes
            ],
            "validation": [
                {
                    "name": c.name,
                    "size": c.size,
                    "tuned_ms": c.tuned_ms,
                    "default_ms": c.default_ms,
                    "speedup": c.speedup,
                    "bitwise": c.bitwise,
                }
                for c in self.validation
            ],
        }


# -- crossover op harnesses ---------------------------------------------


@dataclass(frozen=True)
class _OpSpec:
    """One parallel op under crossover search.

    ``build(rng, n, pool)`` returns ``(op, mutated)``: a zero-argument
    closure running the op once over ``n`` elements, and the arrays it
    mutates (the bitwise-comparison set).
    """

    name: str
    build: Callable


def _build_adam(rng: np.random.Generator, n: int, pool: KernelPool):
    p, m, g = (rng.standard_normal(n, dtype=np.float32) for _ in range(3))
    v = np.abs(rng.standard_normal(n, dtype=np.float32))
    config = AdamConfig(lr=1e-3, weight_decay=0.01)

    def op() -> None:
        ops.parallel_adam_flat(p, m, v, g, config, 1, pool=pool)

    return op, [p, m, v]


def _build_scale(rng, n, pool):
    buf = rng.standard_normal(n, dtype=np.float32)
    coef = np.float32(0.99970243)

    def op() -> None:
        ops.parallel_scale(buf, coef, pool=pool)

    return op, [buf]


def _build_copy(rng, n, pool):
    src = rng.standard_normal(n, dtype=np.float32)
    dst = np.empty_like(src)

    def op() -> None:
        ops.parallel_copy(dst, src, pool=pool)

    return op, [dst]


def _build_cast(rng, n, pool):
    src = rng.standard_normal(n, dtype=np.float32)
    dst = np.empty(n, dtype=np.float16)

    def op() -> None:
        ops.parallel_cast(dst, src, ignore_overflow=True, pool=pool)

    return op, [dst]


def _build_scale_into(rng, n, pool):
    src = rng.standard_normal(n, dtype=np.float32)
    dst = np.empty_like(src)
    scale = np.float32(1.0 / 1024.0)

    def op() -> None:
        ops.parallel_scale_into(dst, src, scale, pool=pool)

    return op, [dst]


def _build_add_scaled(rng, n, pool):
    src = rng.standard_normal(n, dtype=np.float32)
    dst = rng.standard_normal(n, dtype=np.float32)
    scale = np.float32(1e-3)

    def op() -> None:
        ops.parallel_add_scaled(dst, src, scale, pool=pool)

    return op, [dst]


def _build_reduce(rng, n, pool):
    sources = [rng.standard_normal(n, dtype=np.float32) for _ in range(4)]
    dst = np.empty(n, dtype=np.float32)
    divisor = np.float32(4)

    def op() -> None:
        ops.parallel_reduce(dst, 0, sources, 0, n, divisor, pool=pool)

    return op, [dst]


_OP_SPECS = (
    _OpSpec("adam.min_parallel", _build_adam),
    _OpSpec("scale.min_parallel", _build_scale),
    _OpSpec("copy.min_parallel", _build_copy),
    _OpSpec("cast.min_parallel", _build_cast),
    _OpSpec("scale_into.min_parallel", _build_scale_into),
    _OpSpec("add_scaled.min_parallel", _build_add_scaled),
    _OpSpec("reduce.min_parallel", _build_reduce),
)


def _probe_sizes(t: registry.Tunable, quick: bool) -> List[int]:
    sizes = [c for c in t.choices if not quick or c <= (1 << 19)]
    return sizes or list(t.choices[:2])


def _op_bitwise_ok(spec: _OpSpec, n: int, pool: KernelPool) -> bool:
    """Serial arm vs parallel arm over identical inputs, bit for bit."""
    t = registry.get(spec.name)
    op_s, arrs_s = spec.build(np.random.default_rng(42), n, pool)
    with runtime.overridden(_force(spec.name, t.hi)):
        op_s()
    op_p, arrs_p = spec.build(np.random.default_rng(42), n, pool)
    with runtime.overridden(_force(spec.name, t.lo)):
        op_p()
    return all(np.array_equal(a, b) for a, b in zip(arrs_s, arrs_p))


def _tune_op_crossover(
    spec: _OpSpec, pool: KernelPool, repeats: int, quick: bool,
    rng: np.random.Generator,
) -> TunableOutcome:
    """Find the smallest size where parallel dispatch wins for one op."""
    t = registry.get(spec.name)
    out = TunableOutcome(spec.name, t.default, None, t.kind)
    serial_force = _force(spec.name, t.hi)
    parallel_force = _force(spec.name, t.lo)
    chosen: Optional[int] = None
    probes = _probe_sizes(t, quick)
    for n in probes:
        op, _ = spec.build(rng, n, pool)
        op()  # warm scratch/caches before timing
        serial_s, par_s = _ab_time(
            [_under(serial_force, op), _under(parallel_force, op)], repeats
        )
        out.measurements[f"serial_ms@{n}"] = serial_s * 1e3
        out.measurements[f"parallel_ms@{n}"] = par_s * 1e3
        if par_s < serial_s * (1.0 - MARGIN):
            chosen = n
            break
    if chosen is None:
        # Parallel lost everywhere we looked: stay inline — but only up
        # to the largest probed size.  The inline arm IS the serial
        # ancestor, so this band is trivially bitwise-safe; above it the
        # authoring default stands (unmeasured territory).
        out.chosen = t.hi
        out.band_hi = probes[-1]
        out.note = (
            f"inline won at every probed size; serial up to {probes[-1]}"
        )
        return out
    out.bitwise_ok = _op_bitwise_ok(spec, max(chosen, 1 << 16), pool)
    if not out.bitwise_ok:
        out.chosen = None
        out.note = "bitwise mismatch between dispatch arms; keeping default"
        return out
    out.chosen = chosen
    return out


# -- tile searches ------------------------------------------------------


def _tune_adam_tile(
    pool: KernelPool, repeats: int, quick: bool, rng: np.random.Generator
) -> TunableOutcome:
    """Race ``adam.cache_tile`` candidates on one serial fused chunk."""
    t = registry.get("adam.cache_tile")
    out = TunableOutcome(t.name, t.default, None, t.kind)
    n = (1 << 19) if quick else (1 << 21)
    p, m, g = (rng.standard_normal(n, dtype=np.float32) for _ in range(3))
    v = np.abs(rng.standard_normal(n, dtype=np.float32))
    hyper = kernels.AdamChunkHyper.from_config(
        AdamConfig(lr=1e-3, weight_decay=0.01), 1
    )
    candidates = list(t.choices)
    arms = [
        (lambda tile=c: kernels.adam_chunk(0, n, p, m, v, g, hyper, tile))
        for c in candidates
    ]
    for arm in arms:
        arm()
    times = _ab_time(arms, repeats)
    for c, s in zip(candidates, times):
        out.measurements[f"ms@{c}"] = s * 1e3
    best_i = int(np.argmin(times))
    default_s = times[candidates.index(t.default)]
    if times[best_i] < default_s * (1.0 - MARGIN):
        best = candidates[best_i]
        # bitwise: default tile vs best tile over identical state
        pa, ma, va = (x.copy() for x in (p, m, v))
        pb, mb, vb = (x.copy() for x in (p, m, v))
        kernels.adam_chunk(0, n, pa, ma, va, g, hyper, t.default)
        kernels.adam_chunk(0, n, pb, mb, vb, g, hyper, best)
        out.bitwise_ok = (
            np.array_equal(pa, pb) and np.array_equal(ma, mb)
            and np.array_equal(va, vb)
        )
        if out.bitwise_ok:
            out.chosen = best
        else:
            out.note = "tile candidates disagreed bitwise; keeping default"
    else:
        out.note = "no tile beat the default by the margin"
    return out


def _tune_grace_tile(
    repeats: int, quick: bool, rng: np.random.Generator
) -> TunableOutcome:
    """Race ``grace.tile_size`` on the serial tiled walk."""
    t = registry.get("grace.tile_size")
    out = TunableOutcome(t.name, t.default, None, t.kind)
    n = (1 << 19) if quick else (1 << 21)
    candidates = list(t.choices)
    base_w = rng.standard_normal(n, dtype=np.float32)
    grads = {"w": rng.standard_normal(n, dtype=np.float32)}
    opts = []
    for c in candidates:
        params = {"w": base_w.copy()}
        FlatArena.adopt(params)
        opts.append(
            GraceAdam(params, AdamConfig(lr=1e-3), tile_size=c,
                      chunked=False)
        )
    arms = [(lambda o=o: o.step(grads)) for o in opts]
    for arm in arms:
        arm()
    times = _ab_time(arms, repeats)
    for c, s in zip(candidates, times):
        out.measurements[f"ms@{c}"] = s * 1e3
    best_i = int(np.argmin(times))
    default_s = times[candidates.index(t.default)]
    if times[best_i] < default_s * (1.0 - MARGIN):
        # The walk is elementwise, so all candidates stepped the same
        # inputs the same number of times — compare their params.
        ref = opts[candidates.index(t.default)]
        best_opt = opts[best_i]
        out.bitwise_ok = np.array_equal(
            ref.params["w"], best_opt.params["w"]
        )
        if out.bitwise_ok:
            out.chosen = candidates[best_i]
        else:
            out.note = "tile candidates disagreed bitwise; keeping default"
    else:
        out.note = "no tile beat the default by the margin"
    return out


def _tune_flash_blocks(
    pool: KernelPool, repeats: int, quick: bool, rng: np.random.Generator
) -> List[TunableOutcome]:
    """Race square flash tile sides on a representative fwd+bwd step.

    The exception to the bitwise rule: block sides change the online-
    softmax reduction order, so the gate is fp32 tolerance against the
    dense reference plus bitwise determinism across worker counts.
    """
    tq = registry.get("flash.block_q")
    tk = registry.get("flash.block_k")
    out_q = TunableOutcome(tq.name, tq.default, None, tq.kind)
    out_k = TunableOutcome(tk.name, tk.default, None, tk.kind)
    seq = 256 if quick else 512
    batch, heads, dim = 2, 4, 32
    q = rng.standard_normal((batch, heads, seq, dim), dtype=np.float32)
    k = rng.standard_normal((batch, heads, seq, dim), dtype=np.float32)
    v = rng.standard_normal((batch, heads, seq, dim), dtype=np.float32)
    dout = rng.standard_normal(q.shape, dtype=np.float32)
    candidates = [c for c in tq.choices if c <= seq]

    def step(block: int) -> None:
        _, cache = flash.streaming_attention_forward(
            q, k, v, causal=True, block_q=block, block_k=block, pool=pool
        )
        flash.streaming_attention_backward(dout, cache, pool=pool)

    arms = [(lambda b=c: step(b)) for c in candidates]
    for arm in arms:
        arm()
    times = _ab_time(arms, repeats)
    for c, s in zip(candidates, times):
        out_q.measurements[f"ms@{c}"] = s * 1e3
    best_i = int(np.argmin(times))
    default_s = times[candidates.index(tq.default)] \
        if tq.default in candidates else min(times)
    best = candidates[best_i]
    if best != tq.default and times[best_i] < default_s * (1.0 - MARGIN):
        ref, ref_cache = MultiHeadAttention.core_forward(q, k, v, True)
        got, cache = flash.streaming_attention_forward(
            q, k, v, causal=True, block_q=best, block_k=best, pool=pool
        )
        fwd_ok = float(np.abs(got - ref).max()) <= FLASH_FWD_TOL
        rgrads = MultiHeadAttention.core_backward(dout, ref_cache)
        sgrads = flash.streaming_attention_backward(dout, cache, pool=pool)
        bwd_ok = all(
            float(np.abs(a - b).max()) <= FLASH_BWD_TOL
            for a, b in zip(sgrads, rgrads)
        )
        inline, _ = flash.streaming_attention_forward(
            q, k, v, causal=True, block_q=best, block_k=best
        )
        workers_ok = np.array_equal(got, inline)
        ok = fwd_ok and bwd_ok and workers_ok
        out_q.bitwise_ok = out_k.bitwise_ok = workers_ok
        if ok:
            out_q.chosen = out_k.chosen = best
        else:
            note = "candidate failed tolerance/determinism; keeping default"
            out_q.note = out_k.note = note
    else:
        out_q.note = out_k.note = "no block side beat the default"
    out_k.measurements = dict(out_q.measurements)
    return [out_q, out_k]


# -- int8 inference -----------------------------------------------------

#: qmatmul-vs-reference agreement bound for candidate group sizes (the
#: same scaled-max criterion the bench's ``tolerance_ok`` uses).
QMATMUL_TOL = 1e-4

#: paged-vs-dense attention agreement bound for candidate page sizes
#: (page boundaries reorder the online softmax, like flash blocks).
KV_ATTN_TOL = 1e-5


def _tune_quant(
    pool: KernelPool, repeats: int, quick: bool, rng: np.random.Generator
) -> List[TunableOutcome]:
    """Race int8 group sizes and dequant tile widths on a decode matmul.

    Group size changes the quantization itself (different scales,
    different codes) and tile width changes the BLAS operand shapes
    (which may reassociate dot products), so both gates are fp32
    tolerance against the dense-dequant reference plus bitwise
    determinism across worker counts at the candidate value.
    """
    from repro.exec.ops import parallel_qmatmul, qmatmul_reference
    from repro.numeric.lowprec import (
        QuantizedTensor,
        quantize_int8_blocked,
    )

    tg = registry.get("quant.group_size")
    tt = registry.get("quant.dequant_tile")
    out_g = TunableOutcome(tg.name, tg.default, None, tg.kind)
    out_t = TunableOutcome(tt.name, tt.default, None, tt.kind)
    m, k, n = (8, 512, 1024) if quick else (8, 1024, 4096)
    w = (0.05 * rng.standard_normal((k, n))).astype(np.float32)
    x = rng.standard_normal((m, k), dtype=np.float32)
    bias = rng.standard_normal(n, dtype=np.float32)
    out = np.empty((m, n), dtype=np.float32)

    gcands = [c for c in tg.choices if c <= k]
    qts = {
        c: QuantizedTensor(*quantize_int8_blocked(w, c), c)
        for c in gcands
    }
    arms = [
        (lambda c=c: parallel_qmatmul(x, qts[c], bias, out=out, pool=pool))
        for c in gcands
    ]
    for arm in arms:
        arm()
    times = _ab_time(arms, repeats)
    for c, s in zip(gcands, times):
        out_g.measurements[f"ms@{c}"] = s * 1e3
    best_i = int(np.argmin(times))
    best = gcands[best_i]
    default_s = (times[gcands.index(tg.default)]
                 if tg.default in gcands else min(times))
    if best != tg.default and times[best_i] < default_s * (1.0 - MARGIN):
        got = parallel_qmatmul(x, qts[best], bias, pool=pool)
        ref = qmatmul_reference(x, qts[best], bias)
        scale = float(np.abs(ref).max()) + 1e-12
        tol_ok = float(np.abs(got - ref).max()) / scale <= QMATMUL_TOL
        inline = parallel_qmatmul(x, qts[best], bias, pool=KernelPool(1))
        det_ok = bool(np.array_equal(got, inline))
        out_g.bitwise_ok = det_ok
        if tol_ok and det_ok:
            out_g.chosen = best
        else:
            out_g.note = (
                "candidate failed tolerance/determinism; keeping default"
            )
    else:
        out_g.note = "no group size beat the default"

    qt0 = qts.get(tg.default, qts[gcands[-1]])
    tcands = [c for c in tt.choices if c <= n]
    tarms = [
        (lambda c=c: parallel_qmatmul(
            x, qt0, bias, out=out, pool=pool, tile=c
        ))
        for c in tcands
    ]
    for arm in tarms:
        arm()
    ttimes = _ab_time(tarms, repeats)
    for c, s in zip(tcands, ttimes):
        out_t.measurements[f"ms@{c}"] = s * 1e3
    tbest_i = int(np.argmin(ttimes))
    tbest = tcands[tbest_i]
    tdefault_s = (ttimes[tcands.index(tt.default)]
                  if tt.default in tcands else min(ttimes))
    if tbest != tt.default and ttimes[tbest_i] < tdefault_s * (1.0 - MARGIN):
        got = parallel_qmatmul(x, qt0, bias, pool=pool, tile=tbest)
        ref = qmatmul_reference(x, qt0, bias)
        scale = float(np.abs(ref).max()) + 1e-12
        tol_ok = float(np.abs(got - ref).max()) / scale <= QMATMUL_TOL
        inline = parallel_qmatmul(
            x, qt0, bias, pool=KernelPool(1), tile=tbest
        )
        out_t.bitwise_ok = bool(np.array_equal(got, inline))
        if tol_ok and out_t.bitwise_ok:
            out_t.chosen = tbest
        else:
            out_t.note = (
                "candidate failed tolerance/determinism; keeping default"
            )
    else:
        out_t.note = "no tile beat the default"
    return [out_g, out_t]


def _tune_kv(
    pool: KernelPool, repeats: int, quick: bool, rng: np.random.Generator
) -> TunableOutcome:
    """Race KV page sizes on a single-session decode loop.

    Page boundaries reorder the online-softmax accumulation (same
    contract as the flash block sides), so the gate is fp32 tolerance
    of the final decode step against a dense softmax over the same
    history.
    """
    from repro.tensors.kvcache import PagedKVCache, paged_attention

    t = registry.get("kv.page_tokens")
    out = TunableOutcome(t.name, t.default, None, t.kind)
    heads, head_dim = 4, 16
    steps = 32 if quick else 64
    keys = rng.standard_normal((heads, steps, head_dim)) \
        .astype(np.float32)
    vals = rng.standard_normal((heads, steps, head_dim)) \
        .astype(np.float32)
    queries = rng.standard_normal((heads, steps, head_dim)) \
        .astype(np.float32)
    candidates = [c for c in t.choices if c <= steps]

    def decode_loop(page_tokens: int) -> np.ndarray:
        with PagedKVCache(
            1, heads, head_dim, page_tokens=page_tokens
        ) as cache:
            last = None
            for i in range(steps):
                cache.append(0, 0, keys[:, i:i + 1], vals[:, i:i + 1])
                last = paged_attention(
                    queries[:, i:i + 1], cache.iter_pages(0, 0), i
                )
            return last

    arms = [(lambda c=c: decode_loop(c)) for c in candidates]
    for arm in arms:
        arm()
    times = _ab_time(arms, repeats)
    for c, s in zip(candidates, times):
        out.measurements[f"ms@{c}"] = s * 1e3
    best_i = int(np.argmin(times))
    best = candidates[best_i]
    default_s = (times[candidates.index(t.default)]
                 if t.default in candidates else min(times))
    if best != t.default and times[best_i] < default_s * (1.0 - MARGIN):
        got = decode_loop(best)
        # Dense reference for the final decode step: full softmax over
        # the whole history, no paging.
        logits = np.einsum(
            "hqd,hkd->hqk", queries[:, -1:], keys
        ) / np.sqrt(head_dim)
        probs = np.exp(logits - logits.max(axis=-1, keepdims=True))
        probs /= probs.sum(axis=-1, keepdims=True)
        ref = np.einsum("hqk,hkd->hqd", probs, vals)
        out.bitwise_ok = True
        if float(np.abs(got - ref).max()) <= KV_ATTN_TOL:
            out.chosen = best
        else:
            out.note = "candidate failed tolerance; keeping default"
    else:
        out.note = "no page size beat the default"
    return out


# -- ZeRO / rollback / workers ------------------------------------------


def _pipe_fixture(
    rng: np.random.Generator, n: int, pool: KernelPool,
    bucket: Optional[int], world: int = 4,
):
    params = {
        f"p{i}": rng.standard_normal(n // 8, dtype=np.float32)
        for i in range(8)
    }
    opt = ZeroShardedAdam(
        params, world, pipeline=True, bucket_elements=bucket, pool=pool
    )
    flats = []
    for r in range(world):
        ga = opt.grad_arena(r)
        for view in ga.views.values():
            view[...] = rng.standard_normal(view.shape, dtype=np.float32)
        flats.append(ga.flat)
    return opt, flats


def _tune_zero_pipeline(
    pool: KernelPool, repeats: int, quick: bool, rng: np.random.Generator
) -> List[TunableOutcome]:
    """``zero.min_pipeline`` crossover, then ``zero.bucket_elements``."""
    t_min = registry.get("zero.min_pipeline")
    t_bkt = registry.get("zero.bucket_elements")
    out_min = TunableOutcome(t_min.name, t_min.default, None, t_min.kind)
    out_bkt = TunableOutcome(t_bkt.name, t_bkt.default, None, t_bkt.kind)
    serial_force = _force(t_min.name, t_min.hi)
    pipe_force = _force(t_min.name, 1)
    chosen: Optional[int] = None
    min_probes = _probe_sizes(t_min, quick)
    for n in min_probes:
        opt, flats = _pipe_fixture(rng, n, pool, None)
        op = lambda o=opt, f=flats: o.step_flat(f)
        op()
        serial_s, pipe_s = _ab_time(
            [_under(serial_force, op), _under(pipe_force, op)], repeats
        )
        out_min.measurements[f"serial_ms@{n}"] = serial_s * 1e3
        out_min.measurements[f"pipeline_ms@{n}"] = pipe_s * 1e3
        if pipe_s < serial_s * (1.0 - MARGIN):
            chosen = n
            break
    if chosen is not None:
        # Bitwise: one pipelined and one serial step over identical
        # state must agree bit for bit (the substrate contract).
        rng_a = np.random.default_rng(7)
        opt_a, flats_a = _pipe_fixture(rng_a, chosen, pool, None)
        rng_b = np.random.default_rng(7)
        opt_b, flats_b = _pipe_fixture(rng_b, chosen, pool, None)
        with runtime.overridden(pipe_force):
            opt_a.step_flat(flats_a)
        with runtime.overridden(serial_force):
            opt_b.step_flat(flats_b)
        out_min.bitwise_ok = np.array_equal(
            opt_a.arena.flat, opt_b.arena.flat
        )
        if out_min.bitwise_ok:
            out_min.chosen = chosen
        else:
            out_min.note = "pipelined step diverged bitwise; keeping default"
    else:
        # Serial won everywhere probed: stay serial up to the largest
        # probe (the serial branch is the ancestor — bitwise-safe);
        # above it the default 0 (always pipeline) stands unchanged.
        out_min.chosen = t_min.hi
        out_min.band_hi = min_probes[-1]
        out_min.note = (
            f"serial won at every probed size; no pipeline up to "
            f"{min_probes[-1]}"
        )
    # Bucket size race at the largest probed size, pipeline forced on —
    # bucket structure only matters on big flats, so the race must run
    # there, not wherever the crossover loop happened to stop early.
    if min_probes:
        n = min_probes[-1]
        candidates = [c for c in t_bkt.choices if c <= n]
        if len(candidates) >= 2:
            # Same seed per fixture: identical initial state and
            # gradients, so the arenas must agree bitwise afterwards.
            fixtures = [
                _pipe_fixture(np.random.default_rng(11), n, pool, c)
                for c in candidates
            ]
            arms = [
                _under(pipe_force, (lambda o=o, f=f: o.step_flat(f)))
                for o, f in fixtures
            ]
            for arm in arms:
                arm()
            times = _ab_time(arms, repeats)
            for c, s in zip(candidates, times):
                out_bkt.measurements[f"ms@{c}"] = s * 1e3
            eff_default = min(t_bkt.default, fixtures[0][0]._shard_len)
            best_i = int(np.argmin(times))
            if candidates[best_i] != eff_default and (
                eff_default not in candidates
                or times[best_i]
                < times[candidates.index(eff_default)] * (1.0 - MARGIN)
            ):
                ref_i = (candidates.index(eff_default)
                         if eff_default in candidates else 0)
                out_bkt.bitwise_ok = np.array_equal(
                    fixtures[best_i][0].arena.flat,
                    fixtures[ref_i][0].arena.flat,
                )
                if out_bkt.bitwise_ok:
                    out_bkt.chosen = candidates[best_i]
                else:
                    out_bkt.note = (
                        "bucket candidates disagreed bitwise; keeping default"
                    )
            else:
                out_bkt.note = "no bucket size beat the default"
            for opt, _ in fixtures:
                opt.release_staging()
        else:
            out_bkt.note = "probe too small to race bucket sizes"
    return [out_min, out_bkt]


def _tune_rollback_cutoff(
    repeats: int, quick: bool, rng: np.random.Generator
) -> TunableOutcome:
    """Smallest bucket size where the arena range-memcpy path wins."""
    t = registry.get("rollback.snapshot_cutoff")
    out = TunableOutcome(t.name, t.default, None, t.kind)
    tensor_force = _force(t.name, t.hi)   # always per-tensor copies
    arena_force = _force(t.name, 1)       # always the range path
    chosen: Optional[int] = None
    probes = _probe_sizes(t, quick)
    for n in probes:
        params = {
            f"p{i}": rng.standard_normal(n // 8, dtype=np.float32)
            for i in range(8)
        }
        FlatArena.adopt(params)
        opt = GraceAdam(params, AdamConfig())
        grads = {
            k_: rng.standard_normal(v_.shape, dtype=np.float32)
            for k_, v_ in params.items()
        }
        # Production rollback (make_rollback) runs on the process-default
        # pool, so the cutoff must be measured there too — timing the
        # range path on the tuning pool would mis-steer the cutoff on
        # hosts where the two pools differ.
        rb = SnapshotRollback(opt)

        def cycle() -> None:
            rb.capture(grads)
            rb.rollback(grads)

        cycle()
        tensor_s, arena_s = _ab_time(
            [_under(tensor_force, cycle), _under(arena_force, cycle)],
            repeats,
        )
        out.measurements[f"per_tensor_ms@{n}"] = tensor_s * 1e3
        out.measurements[f"arena_ms@{n}"] = arena_s * 1e3
        if arena_s < tensor_s * (1.0 - MARGIN):
            chosen = n
            break
    if chosen is None:
        # Per-tensor copies won everywhere probed: keep them — up to the
        # largest probe only (the per-tensor path is the ancestor, so
        # the band is bitwise-safe); the default cutoff rules above it.
        out.chosen = t.hi
        out.band_hi = probes[-1]
        out.note = (
            f"per-tensor won at every probed size; no range path up to "
            f"{probes[-1]}"
        )
    else:
        # Both paths restore the exact captured bits by construction;
        # assert it anyway on the chosen size.
        pristine = {k_: v_.copy() for k_, v_ in params.items()}
        with runtime.overridden(arena_force):
            cycle()
        out.bitwise_ok = all(
            np.array_equal(params[k_], pristine[k_]) for k_ in params
        )
        out.chosen = chosen if out.bitwise_ok else None
        if not out.bitwise_ok:
            out.note = "range path did not restore bits; keeping default"
    return out


def _spill_fixture(
    rng: np.random.Generator, n: int, pool: KernelPool, path: str,
    force: Optional[TuneProfile] = None, world: int = 2,
):
    """A disk-offloaded ZeRO fixture mirroring :func:`_pipe_fixture`.

    Same parameter layout and rng consumption order as the resident
    fixture, so a resident twin built from an equal-seeded generator is
    the bitwise reference for every spill candidate.  ``force`` pins a
    candidate profile over the construction-time tunable reads
    (``spill.chunk_bytes`` / ``spill.prefetch_depth`` /
    ``spill.writer_queue``).
    """
    params = {
        f"p{i}": rng.standard_normal(n // 8, dtype=np.float32)
        for i in range(8)
    }
    if force is not None:
        with runtime.overridden(force):
            opt = ZeroShardedAdam(
                params, world, pipeline=True, pool=pool,
                offload="disk", spill_dir=path,
            )
    else:
        opt = ZeroShardedAdam(
            params, world, pipeline=True, pool=pool,
            offload="disk", spill_dir=path,
        )
    flats = []
    for r in range(world):
        ga = opt.grad_arena(r)
        for view in ga.views.values():
            view[...] = rng.standard_normal(view.shape, dtype=np.float32)
        flats.append(ga.flat)
    return opt, flats


def _tune_spill(
    pool: KernelPool, repeats: int, quick: bool, rng: np.random.Generator
) -> List[TunableOutcome]:
    """Race the spill-tier tunables on a real tmpdir disk fixture.

    The three knobs are read at :class:`ZeroShardedAdam` construction
    time, so each candidate gets its own fixture built under a pinned
    single-entry profile; all fixtures (plus a resident twin) step the
    same number of times over identical state, and the winner is gated
    bitwise against the resident master flat.
    """
    outs: List[TunableOutcome] = []
    n = (1 << 16) if quick else (1 << 18)
    seed = 23
    for name in (
        "spill.chunk_bytes", "spill.prefetch_depth", "spill.writer_queue"
    ):
        t = registry.get(name)
        out = TunableOutcome(t.name, t.default, None, t.kind)
        candidates = sorted(set(t.choices) | {t.default})
        with tempfile.TemporaryDirectory(
            prefix="repro-tune-spill-"
        ) as sd:
            fixtures = [
                _spill_fixture(
                    np.random.default_rng(seed), n, pool,
                    os.path.join(sd, f"c{i}"), _force(name, c),
                )
                for i, c in enumerate(candidates)
            ]
            resident_opt, resident_flats = _pipe_fixture(
                np.random.default_rng(seed), n, pool, None, world=2
            )
            arms = [
                _under(_force(name, c),
                       (lambda o=o, f=f: o.step_flat(f)))
                for c, (o, f) in zip(candidates, fixtures)
            ]
            for arm in arms:
                arm()
            times = _ab_time(arms, repeats)
            # Every fixture stepped 1 + repeats times; march the
            # resident twin to the same step count for the bitwise gate.
            for _ in range(1 + repeats):
                resident_opt.step_flat(resident_flats)
            for c, s in zip(candidates, times):
                out.measurements[f"ms@{c}"] = s * 1e3
            best_i = int(np.argmin(times))
            default_s = times[candidates.index(t.default)]
            if candidates[best_i] != t.default and (
                times[best_i] < default_s * (1.0 - MARGIN)
            ):
                out.bitwise_ok = np.array_equal(
                    resident_opt.arena.flat, fixtures[best_i][0].arena.flat
                )
                if out.bitwise_ok:
                    out.chosen = candidates[best_i]
                else:
                    out.note = (
                        "candidate diverged from the resident step; "
                        "keeping default"
                    )
            else:
                out.note = "no candidate beat the default by the margin"
            for opt, _ in fixtures:
                opt.release_staging()
                opt.close_spill()
            resident_opt.release_staging()
        outs.append(out)
    return outs


def _tune_workers(
    repeats: int, quick: bool, rng: np.random.Generator
) -> TunableOutcome:
    """Race pool sizes on the fused Adam op at a large size."""
    t = registry.get("pool.workers")
    out = TunableOutcome(t.name, t.default, None, t.kind)
    auto = default_workers()
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    candidates = sorted({c for c in t.choices if c <= cpus} | {auto})
    if len(candidates) < 2:
        out.note = f"single-candidate host (cpus={cpus}); keeping auto"
        return out
    n = (1 << 19) if quick else (1 << 21)
    p, m, g = (rng.standard_normal(n, dtype=np.float32) for _ in range(3))
    v = np.abs(rng.standard_normal(n, dtype=np.float32))
    config = AdamConfig(lr=1e-3, weight_decay=0.01)
    force_par = _force("adam.min_parallel", 1)
    pools = [get_pool(c) for c in candidates]
    arms = [
        _under(force_par,
               (lambda pl=pl: ops.parallel_adam_flat(
                   p, m, v, g, config, 1, pool=pl)))
        for pl in pools
    ]
    for arm in arms:
        arm()
    times = _ab_time(arms, repeats)
    for c, s in zip(candidates, times):
        out.measurements[f"ms@{c}w"] = s * 1e3
    best_i = int(np.argmin(times))
    auto_s = times[candidates.index(auto)]
    if candidates[best_i] != auto and times[best_i] < auto_s * (1.0 - MARGIN):
        out.chosen = candidates[best_i]
    else:
        out.note = f"auto count ({auto}) already within the margin"
    for pl in pools:
        pl.shutdown()
    return out


# -- validation ---------------------------------------------------------

#: Which profile entries steer each validation workload — the revert
#: set when that workload's replay regresses under the tuned profile.
_WORKLOAD_ENTRIES: Dict[str, Tuple[str, ...]] = {
    "parallel_step": (
        "adam.min_parallel", "adam.cache_tile", "grace.tile_size",
    ),
    "zero_pipeline": ("zero.min_pipeline", "zero.bucket_elements"),
    "rollback": ("rollback.snapshot_cutoff",),
    "attention": ("flash.block_q", "flash.block_k"),
    "spill": (
        "spill.chunk_bytes", "spill.prefetch_depth", "spill.writer_queue",
    ),
    "inference": (
        "quant.group_size", "quant.dequant_tile", "kv.page_tokens",
    ),
}


def _regressed_workloads(checks: Sequence[ValidationCheck]) -> List[str]:
    """Workloads whose tuned-vs-default geomean fell below the margin.

    Per-workload geomean rather than per-size minimum: single rows
    wobble a few percent on busy hosts, and a tuning that trades a big
    small-size win for break-even at large sizes is still a win — but a
    workload that loses overall means its micro-probe was wrong.
    """
    by_workload: Dict[str, List[float]] = {}
    for c in checks:
        by_workload.setdefault(c.name, []).append(c.speedup)
    return [
        name
        for name, speedups in by_workload.items()
        if math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        < 1.0 - MARGIN
    ]


def validate_profile(
    profile: TuneProfile,
    quick: bool = False,
    workers: Optional[int] = None,
    repeats: int = 7,
    seed: int = 0,
) -> List[ValidationCheck]:
    """Replay the tuned-vs-default contest on real substrate workloads.

    Each check times the same workload under ``overridden(profile)`` and
    ``overridden(None)`` in interleaved rounds, and verifies the tuned
    arm's result bitwise against the serial ancestor (tolerance + worker
    determinism for attention).  These are the rows ``repro tune``
    prints and the numbers the CI geomean assert consumes.
    """
    if workers is None:
        workers = max(2, default_workers())
    if quick:
        repeats = min(repeats, 5)
    rng = np.random.default_rng(seed)
    pool = get_pool(workers)
    checks: List[ValidationCheck] = []
    sizes = [1 << 16, 1 << 19] + ([] if quick else [1 << 22])

    # parallel_step: GraceAdam chunked (tuned vs default) vs CPUAdam serial
    for n in sizes:
        config = AdamConfig(lr=1e-3, weight_decay=0.01)
        params = {
            f"p{i}": rng.standard_normal(n // 8, dtype=np.float32)
            for i in range(8)
        }
        trio = []
        for _ in range(3):
            ps = {k_: v_.copy() for k_, v_ in params.items()}
            FlatArena.adopt(ps)
            trio.append(ps)
        serial = CPUAdam(trio[0], config, chunked=False)
        with runtime.overridden(profile):
            tuned = GraceAdam(trio[1], config, pool=pool, chunked=True)
        with runtime.overridden(None):
            default = GraceAdam(trio[2], config, pool=pool, chunked=True)
        grads = serial.arena.like()
        for view in grads.views.values():
            view[...] = rng.standard_normal(view.shape, dtype=np.float32)
        dicts = []
        for opt in (serial, tuned, default):
            ga = opt.arena.like()
            ga.flat[...] = grads.flat
            dicts.append(dict(ga.views))
        arms = [
            lambda: serial.step(dicts[0]),
            _under(profile, lambda: tuned.step(dicts[1])),
            _under(None, lambda: default.step(dicts[2])),
        ]
        for arm in arms:
            arm()
        _, tuned_s, default_s = _ab_time(arms, repeats)
        bitwise = (
            serial.step_count == tuned.step_count == default.step_count
            and np.array_equal(serial.arena.flat, tuned.arena.flat)
            and np.array_equal(serial.arena.flat, default.arena.flat)
        )
        checks.append(ValidationCheck(
            "parallel_step", n, tuned_s * 1e3, default_s * 1e3, bitwise
        ))

    # zero_pipeline: pipelined step tuned vs default, bitwise vs serial
    for n in sizes:
        rng_n = np.random.default_rng(seed + n)
        serial_opt, serial_flats = _pipe_fixture(
            np.random.default_rng(seed + n), n, pool, None
        )
        with runtime.overridden(profile):
            tuned_opt, tuned_flats = _pipe_fixture(
                np.random.default_rng(seed + n), n, pool, None
            )
        with runtime.overridden(None):
            default_opt, default_flats = _pipe_fixture(
                np.random.default_rng(seed + n), n, pool, None
            )
        never_pipe = _force("zero.min_pipeline",
                            registry.get("zero.min_pipeline").hi)
        arms = [
            _under(never_pipe, lambda: serial_opt.step_flat(serial_flats)),
            _under(profile, lambda: tuned_opt.step_flat(tuned_flats)),
            _under(None, lambda: default_opt.step_flat(default_flats)),
        ]
        for arm in arms:
            arm()
        _, tuned_s, default_s = _ab_time(arms, repeats)
        bitwise = (
            np.array_equal(serial_opt.arena.flat, tuned_opt.arena.flat)
            and np.array_equal(serial_opt.arena.flat,
                               default_opt.arena.flat)
        )
        checks.append(ValidationCheck(
            "zero_pipeline", n, tuned_s * 1e3, default_s * 1e3, bitwise
        ))
        for o in (serial_opt, tuned_opt, default_opt):
            o.release_staging()

    # rollback: capture+rollback cycle tuned vs default
    for n in sizes:
        params = {
            f"p{i}": rng.standard_normal(n // 8, dtype=np.float32)
            for i in range(8)
        }
        FlatArena.adopt(params)
        opt = GraceAdam(params, AdamConfig())
        grads = {
            k_: rng.standard_normal(v_.shape, dtype=np.float32)
            for k_, v_ in params.items()
        }
        rb = SnapshotRollback(opt)  # the pool production rollback uses
        pristine = {k_: v_.copy() for k_, v_ in params.items()}

        def cycle() -> None:
            rb.capture(grads)
            rb.rollback(grads)

        cycle()
        tuned_s, default_s = _ab_time(
            [_under(profile, cycle), _under(None, cycle)], repeats
        )
        bitwise = all(
            np.array_equal(params[k_], pristine[k_]) for k_ in params
        )
        checks.append(ValidationCheck(
            "rollback", n, tuned_s * 1e3, default_s * 1e3, bitwise
        ))

    # spill: disk-offloaded ZeRO step tuned vs default, bitwise vs a
    # resident twin (the spill knobs are construction-time reads, so
    # each arm owns a fixture built under its profile)
    n = (1 << 16) if quick else (1 << 18)
    with tempfile.TemporaryDirectory(prefix="repro-tune-spillval-") as sd:
        with runtime.overridden(profile):
            tuned_opt, tuned_flats = _spill_fixture(
                np.random.default_rng(seed + 3), n, pool,
                os.path.join(sd, "tuned"),
            )
        with runtime.overridden(None):
            default_opt, default_flats = _spill_fixture(
                np.random.default_rng(seed + 3), n, pool,
                os.path.join(sd, "default"),
            )
        resident_opt, resident_flats = _pipe_fixture(
            np.random.default_rng(seed + 3), n, pool, None, world=2
        )
        arms = [
            _under(profile, lambda: tuned_opt.step_flat(tuned_flats)),
            _under(None, lambda: default_opt.step_flat(default_flats)),
            lambda: resident_opt.step_flat(resident_flats),
        ]
        for arm in arms:
            arm()
        tuned_s, default_s, _ = _ab_time(arms, repeats)
        bitwise = (
            np.array_equal(resident_opt.arena.flat, tuned_opt.arena.flat)
            and np.array_equal(resident_opt.arena.flat,
                               default_opt.arena.flat)
        )
        checks.append(ValidationCheck(
            "spill", n, tuned_s * 1e3, default_s * 1e3, bitwise
        ))
        for o in (tuned_opt, default_opt):
            o.release_staging()
            o.close_spill()
        resident_opt.release_staging()

    # attention: streaming fwd+bwd with tuned vs default block sides
    seq = 256 if quick else 1024
    batch, heads, dim = 2, 4, 32
    q = rng.standard_normal((batch, heads, seq, dim), dtype=np.float32)
    k = rng.standard_normal((batch, heads, seq, dim), dtype=np.float32)
    v = rng.standard_normal((batch, heads, seq, dim), dtype=np.float32)
    dout = rng.standard_normal(q.shape, dtype=np.float32)

    def attn_step() -> None:
        _, cache = flash.streaming_attention_forward(
            q, k, v, causal=True, pool=pool
        )
        flash.streaming_attention_backward(dout, cache, pool=pool)

    attn_step()
    tuned_s, default_s = _ab_time(
        [_under(profile, attn_step), _under(None, attn_step)], repeats
    )
    ref, _ = MultiHeadAttention.core_forward(q, k, v, True)
    with runtime.overridden(profile):
        got, _ = flash.streaming_attention_forward(
            q, k, v, causal=True, pool=pool
        )
        inline, _ = flash.streaming_attention_forward(q, k, v, causal=True)
    tol_ok = float(np.abs(got - ref).max()) <= FLASH_FWD_TOL
    det_ok = np.array_equal(got, inline)
    checks.append(ValidationCheck(
        "attention", seq, tuned_s * 1e3, default_s * 1e3,
        tol_ok and det_ok,
    ))

    # inference: a continuous-batching serving burst tuned vs default.
    # The quant/kv knobs are construction-time reads (group size at
    # QuantizedStore.pack, page size at cache build), so each arm owns
    # an engine built under its profile.  The ok-gate is completion (all
    # sessions reach their budget) plus qmatmul tolerance under the
    # tuned group size — token ids may legitimately differ between
    # group sizes, so they are not compared.
    from repro.numeric.lowprec import QuantizedTensor, quantize_int8_blocked
    from repro.numeric.transformer import TinyTransformer, TransformerParams
    from repro.serving import (
        ContinuousBatchingScheduler,
        InferenceEngine,
        SessionRegistry,
    )

    spec = TransformerParams(vocab=128, max_seq=64, hidden=64,
                             n_layers=2, n_heads=4)
    model = TinyTransformer(spec, seed=7)
    n_sessions, max_new = (4, 8) if quick else (8, 16)
    prompts = [
        rng.integers(0, spec.vocab, size=12) for _ in range(n_sessions)
    ]
    completed = []

    def burst(prof: Optional[TuneProfile]) -> None:
        with runtime.overridden(prof):
            with InferenceEngine(model, pool=pool) as engine:
                sessions = SessionRegistry()
                for p in prompts:
                    sessions.create(p, max_new)
                ContinuousBatchingScheduler(
                    engine, sessions, max_batch=4
                ).run_until_done()
                completed.append(all(
                    len(s.generated) == max_new
                    for s in sessions.sessions()
                ))

    arms = [lambda: burst(profile), lambda: burst(None)]
    for arm in arms:
        arm()
    completed_ok = all(completed)
    tuned_s, default_s = _ab_time(arms, repeats)
    with runtime.overridden(profile):
        gs = runtime.value(
            "quant.group_size", registry.default("quant.group_size")
        )
        wq = (0.05 * rng.standard_normal((256, 512))).astype(np.float32)
        xq = rng.standard_normal((8, 256), dtype=np.float32)
        qt = QuantizedTensor(*quantize_int8_blocked(wq, gs), gs)
        got_q = ops.parallel_qmatmul(xq, qt, pool=pool)
        ref_q = ops.qmatmul_reference(xq, qt)
        qscale = float(np.abs(ref_q).max()) + 1e-12
        tol_q = float(np.abs(got_q - ref_q).max()) / qscale <= QMATMUL_TOL
    checks.append(ValidationCheck(
        "inference", n_sessions, tuned_s * 1e3, default_s * 1e3,
        completed_ok and tol_q,
    ))
    pool.shutdown()
    return checks


# -- entry point --------------------------------------------------------


def run_tuning(
    quick: bool = False,
    workers: Optional[int] = None,
    repeats: Optional[int] = None,
    seed: int = 0,
    validate: bool = True,
) -> TuningReport:
    """Search every registered tunable on this host; return the report.

    The search runs with no profile active (``overridden`` pins each
    timing arm explicitly), so a previously installed ``tune.json``
    cannot steer its own re-measurement.
    """
    if repeats is None:
        repeats = 3 if quick else 5
    if workers is None:
        workers = max(2, default_workers())
    rng = np.random.default_rng(seed)
    pool = get_pool(workers)
    outcomes: List[TunableOutcome] = []
    with runtime.overridden(None):
        for spec in _OP_SPECS:
            outcomes.append(
                _tune_op_crossover(spec, pool, repeats, quick, rng)
            )
        outcomes.append(_tune_adam_tile(pool, repeats, quick, rng))
        outcomes.append(_tune_grace_tile(repeats, quick, rng))
        outcomes.extend(_tune_flash_blocks(pool, repeats, quick, rng))
        outcomes.extend(_tune_quant(pool, repeats, quick, rng))
        outcomes.append(_tune_kv(pool, repeats, quick, rng))
        outcomes.extend(_tune_zero_pipeline(pool, repeats, quick, rng))
        outcomes.append(_tune_rollback_cutoff(repeats, quick, rng))
        outcomes.extend(_tune_spill(pool, repeats, quick, rng))
        outcomes.append(_tune_workers(repeats, quick, rng))
    pool.shutdown()
    profile = TuneProfile()
    for o in outcomes:
        if o.chosen is None or not o.bitwise_ok:
            continue
        if o.band_hi is not None:
            profile.set_banded(
                o.name, o.default, [(o.band_hi, o.chosen)]
            )
        else:
            profile.set(o.name, o.chosen)
    validation = (
        validate_profile(profile, quick=quick, workers=workers, seed=seed)
        if validate else []
    )
    # End-to-end backstop: the replay on real workloads is the arbiter,
    # not the micro-probes — an isolated arm timing can be steered by
    # allocator state (e.g. a probe sequence warming the heap for block
    # sizes a fresh process would mmap every cycle).  Any workload whose
    # validation geomean regresses beyond the margin gets the entries
    # that steer it reverted to defaults, then the replay runs again.
    while validation:
        regressed = _regressed_workloads(validation)
        dropped = [
            name
            for workload in regressed
            for name in _WORKLOAD_ENTRIES.get(workload, ())
            if name in profile.entries
        ]
        if not dropped:
            break
        for name in dropped:
            del profile.entries[name]
        for o in outcomes:
            if o.name in dropped:
                o.chosen = None
                o.band_hi = None
                o.note = ((o.note + "; ") if o.note else "") + (
                    "reverted: workload regressed in end-to-end validation"
                )
        validation = validate_profile(
            profile, quick=quick, workers=workers, seed=seed
        )
    return TuningReport(profile, outcomes, validation, workers)
