"""A deterministic, Pile-like synthetic token corpus.

The Pile is a mixture of heterogeneous sources; we model that as a mixture
of first-order Markov chains with Zipf-distributed stationary vocabularies.
A Markov corpus gives training runs a real, learnable signal — the loss
curve of Fig. 14 needs something to converge *to* — while remaining fully
deterministic and offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class SourceSpec:
    """One mixture component.

    Attributes:
        name: label (e.g. ``"web"``, ``"code"``).
        weight: mixture probability.
        zipf_a: Zipf exponent of its token marginal (higher = peakier).
        coherence: in [0, 1); how strongly each token predicts the next
            (0 = iid, near 1 = near-deterministic chains).
    """

    name: str
    weight: float
    zipf_a: float
    coherence: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0 <= self.coherence < 1:
            raise ValueError("coherence must be in [0, 1)")
        if self.zipf_a <= 1:
            raise ValueError("zipf_a must exceed 1")


DEFAULT_SOURCES = (
    SourceSpec("web", weight=0.5, zipf_a=1.2, coherence=0.55),
    SourceSpec("code", weight=0.3, zipf_a=1.5, coherence=0.75),
    SourceSpec("academic", weight=0.2, zipf_a=1.3, coherence=0.65),
)


class SyntheticPile:
    """Deterministic mixture-of-Markov-chains corpus.

    Args:
        vocab: vocabulary size.
        sources: mixture components (defaults mimic a web/code/academic mix).
        seed: generator seed; the same (vocab, sources, seed) triple always
            produces the same token stream.
    """

    def __init__(
        self,
        vocab: int,
        sources: Tuple[SourceSpec, ...] = DEFAULT_SOURCES,
        seed: int = 0,
    ):
        if vocab < 4:
            raise ValueError("vocab must be at least 4")
        self.vocab = vocab
        self.sources = sources
        self.seed = seed
        rng = np.random.default_rng(seed)
        total = sum(s.weight for s in sources)
        self._mixture = np.array([s.weight / total for s in sources])
        # Per-source stationary distribution (Zipf over a shuffled vocab) and
        # a sparse "preferred successor" table realizing the coherence.
        self._marginals: List[np.ndarray] = []
        self._successors: List[np.ndarray] = []
        for src in sources:
            ranks = np.arange(1, vocab + 1, dtype=np.float64)
            probs = ranks ** (-src.zipf_a)
            perm = rng.permutation(vocab)
            marginal = np.empty(vocab)
            marginal[perm] = probs / probs.sum()
            self._marginals.append(marginal)
            self._successors.append(rng.integers(0, vocab, size=vocab))

    def sample_tokens(self, n_tokens: int, stream: int = 0) -> np.ndarray:
        """Generate ``n_tokens`` tokens deterministically for ``stream``.

        Different streams (e.g. data-parallel ranks) get disjoint,
        reproducible token sequences.
        """
        if n_tokens < 1:
            raise ValueError("n_tokens must be positive")
        rng = np.random.default_rng((self.seed, stream, n_tokens))
        src_idx = int(rng.choice(len(self.sources), p=self._mixture))
        src = self.sources[src_idx]
        marginal = self._marginals[src_idx]
        successors = self._successors[src_idx]
        out = np.empty(n_tokens, dtype=np.int64)
        iid = rng.choice(self.vocab, size=n_tokens, p=marginal)
        coherent = rng.random(n_tokens) < src.coherence
        out[0] = iid[0]
        for i in range(1, n_tokens):
            out[i] = successors[out[i - 1]] if coherent[i] else iid[i]
        return out

    def batches(
        self, batch: int, seq: int, start_step: int = 0, rank: int = 0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Endless ``(ids, targets)`` batch stream for one rank.

        Targets are next-token shifted; rank and step index the stream so
        data-parallel replicas see different data deterministically.
        """
        step = start_step
        while True:
            flat = self.sample_tokens(
                batch * (seq + 1), stream=rank * 1_000_003 + step
            )
            chunk = flat.reshape(batch, seq + 1)
            yield chunk[:, :-1], chunk[:, 1:]
            step += 1


def token_batches(
    vocab: int, batch: int, seq: int, n_batches: int, seed: int = 0, rank: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Materialize a fixed number of batches (test/benchmark convenience)."""
    if n_batches < 1:
        raise ValueError("n_batches must be positive")
    pile = SyntheticPile(vocab, seed=seed)
    gen = pile.batches(batch, seq, rank=rank)
    return [next(gen) for _ in range(n_batches)]
