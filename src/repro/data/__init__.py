"""Synthetic training data: a Pile-like mixture corpus (§5.1 uses a subset
of the Pile; we substitute a deterministic synthetic mixture with learnable
structure so convergence experiments are meaningful offline)."""

from repro.data.synthetic import SyntheticPile, SourceSpec, token_batches

__all__ = ["SyntheticPile", "SourceSpec", "token_batches"]
