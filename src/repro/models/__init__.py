"""Transformer model descriptions: the paper's Appendix-A configurations,
parameter/FLOP/memory estimators, and the superchip-aware dataflow graph
(SA-DFG, §4.1) that placement decisions are framed over."""

from repro.models.config import (
    MODEL_CONFIG_TABLE,
    ModelConfig,
    config_for_params,
    list_config_sizes,
)
from repro.models.estimators import (
    activation_bytes_per_token,
    activation_bytes,
    flops_per_token,
    model_flops,
    model_state_bytes,
    param_count,
)
from repro.models.sadfg import SADFG, OpKind, build_training_sadfg, partition_cost

__all__ = [
    "ModelConfig",
    "MODEL_CONFIG_TABLE",
    "config_for_params",
    "list_config_sizes",
    "param_count",
    "flops_per_token",
    "model_flops",
    "model_state_bytes",
    "activation_bytes",
    "activation_bytes_per_token",
    "SADFG",
    "OpKind",
    "build_training_sadfg",
    "partition_cost",
]
