"""GPT/LLaMA-style transformer configurations (paper Appendix A, Table 4).

The paper varies layer count and hidden size to hit each parameter budget;
the table below is that Table 4 verbatim, with a 128-wide attention head and
a GPT-2-style vocabulary filled in (the appendix leaves both implicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

HEAD_DIM = 128
DEFAULT_VOCAB = 50304
DEFAULT_SEQ = 1024


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer configuration.

    Attributes:
        name: label, e.g. ``"gpt-5b"``.
        n_layers: transformer block count.
        hidden: model width.
        n_heads: attention heads (hidden / 128 by default).
        vocab: vocabulary size.
        seq: default training sequence length.
    """

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    vocab: int = DEFAULT_VOCAB
    seq: int = DEFAULT_SEQ

    def __post_init__(self) -> None:
        if self.n_layers < 1 or self.hidden < 1 or self.n_heads < 1:
            raise ValueError("layers, hidden, and heads must be positive")
        if self.hidden % self.n_heads != 0:
            raise ValueError(
                f"hidden {self.hidden} not divisible by heads {self.n_heads}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head width."""
        return self.hidden // self.n_heads

    @property
    def ffn_hidden(self) -> int:
        """MLP inner width (4x, the GPT convention the appendix follows)."""
        return 4 * self.hidden


def _cfg(billions: float, n_layers: int, hidden: int) -> ModelConfig:
    label = f"{billions:g}b"
    return ModelConfig(
        name=f"gpt-{label}",
        n_layers=n_layers,
        hidden=hidden,
        n_heads=hidden // HEAD_DIM,
    )


# Appendix A, Table 4: "# params | # layer | hidden size".
MODEL_CONFIG_TABLE: Dict[float, ModelConfig] = {
    1: _cfg(1, 20, 2048),
    2: _cfg(2, 40, 2048),
    3: _cfg(3, 60, 2048),
    3.5: _cfg(3.5, 70, 2048),  # DDP's single-GPU ceiling in Fig. 13
    4: _cfg(4, 64, 2304),
    5: _cfg(5, 44, 3072),
    6: _cfg(6, 53, 3072),
    8: _cfg(8, 72, 3072),
    10: _cfg(10, 50, 4096),
    11: _cfg(11, 55, 4096),
    12: _cfg(12, 60, 4096),
    13: _cfg(13, 65, 4096),
    15: _cfg(15, 78, 4096),
    20: _cfg(20, 25, 8192),
    25: _cfg(25, 30, 8192),
    30: _cfg(30, 36, 8192),  # used by the Fig. 12 Ulysses experiments
    50: _cfg(50, 60, 8192),
    60: _cfg(60, 75, 8192),
    70: _cfg(70, 87, 8192),
    80: _cfg(80, 100, 8192),
    150: _cfg(150, 45, 16384),
    175: _cfg(175, 53, 16384),  # the Fig. 14 GPT-175B run
    200: _cfg(200, 60, 16384),
}


def config_for_params(billions: float) -> ModelConfig:
    """The Appendix-A configuration closest to ``billions`` parameters.

    Exact table entries are returned as-is; other targets pick the nearest
    entry, mirroring how the paper snaps experiments to its config grid.
    """
    if billions <= 0:
        raise ValueError("billions must be positive")
    if billions in MODEL_CONFIG_TABLE:
        return MODEL_CONFIG_TABLE[billions]
    nearest = min(MODEL_CONFIG_TABLE, key=lambda b: abs(b - billions))
    return MODEL_CONFIG_TABLE[nearest]


def list_config_sizes() -> List[float]:
    """All configured sizes, in billions, ascending."""
    return sorted(MODEL_CONFIG_TABLE)
