"""Parameter, FLOP, and memory estimators.

These are the standard transformer accounting identities the paper's
analysis uses (§2.2: a model with Psi parameters consumes 16*Psi bytes of
model states in mixed precision; §4.2: forward compute is ~2 * bsz * seq *
params FLOPs), plus the Korthikanti-style activation-memory formula that
decides when activation checkpointing or micro-batching is forced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig

MIXED_PRECISION_STATE_BYTES_PER_PARAM = 16  # 2 fp16 param + 2 fp16 grad + 12 optim
OPTIMIZER_STATE_BYTES_PER_PARAM = 12        # fp32 master + m + v


def param_count(config: ModelConfig, include_embeddings: bool = False) -> int:
    """Parameters in the transformer blocks (12 * L * h^2).

    The appendix's configurations follow the 12*L*h^2 identity exactly (e.g.
    20 layers x 2048 hidden = 1.007B), so embeddings are excluded by default
    to match the paper's size labels.

    Args:
        config: the model.
        include_embeddings: add the vocab*h embedding matrix.
    """
    core = 12 * config.n_layers * config.hidden**2
    if include_embeddings:
        core += config.vocab * config.hidden
    return core


def flops_per_token(config: ModelConfig, seq: int | None = None) -> float:
    """Training FLOPs per token (forward + backward).

    ``6 * params`` for the dense blocks plus the ``12 * L * h * s`` attention
    score/value term (Megatron MFU accounting with causal masking).
    """
    s = seq if seq is not None else config.seq
    if s < 1:
        raise ValueError("sequence length must be positive")
    dense = 6 * param_count(config)
    attention = 12 * config.n_layers * config.hidden * s
    return dense + attention


def attention_flops_per_token(config: ModelConfig, seq: int | None = None) -> float:
    """Just the O(seq) attention matmul term of :func:`flops_per_token`."""
    s = seq if seq is not None else config.seq
    return 12 * config.n_layers * config.hidden * s


def model_flops(config: ModelConfig, tokens: int, seq: int | None = None) -> float:
    """Total training FLOPs for ``tokens`` tokens at sequence length ``seq``."""
    if tokens < 0:
        raise ValueError("tokens must be non-negative")
    return flops_per_token(config, seq) * tokens


def model_state_bytes(config: ModelConfig) -> int:
    """Mixed-precision model state footprint: 16 bytes per parameter (§2.2)."""
    return MIXED_PRECISION_STATE_BYTES_PER_PARAM * param_count(config)


def activation_bytes_per_token(
    config: ModelConfig,
    seq: int | None = None,
    checkpointing: bool = False,
    flash_attention: bool = False,
) -> float:
    """Activation bytes per token per *layer* (fp16 residency).

    Without checkpointing this is the Korthikanti et al. per-layer formula
    ``34*h + 5*heads*seq`` bytes per token (the second term is the
    materialized attention matrix; flash attention removes it).  With full
    checkpointing only the 2*h-byte layer-boundary input is stored.
    """
    s = seq if seq is not None else config.seq
    if checkpointing:
        return 2.0 * config.hidden
    per_token = 34.0 * config.hidden
    if not flash_attention:
        per_token += 5.0 * config.n_heads * s
    return per_token


LOGITS_CHUNK_TOKENS = 16384


def logits_bytes(config: ModelConfig, tokens: int) -> float:
    """FP32 logits + softmax working memory at the LM head (~6 bytes/vocab
    entry per token); a fixed cost every system pays on the GPU.  Long-
    sequence training chunks the LM-head loss, capping the working set at
    :data:`LOGITS_CHUNK_TOKENS` tokens."""
    return 6.0 * config.vocab * min(tokens, LOGITS_CHUNK_TOKENS)


def activation_bytes(
    config: ModelConfig,
    micro_batch: int,
    seq: int | None = None,
    checkpointing: bool = False,
    flash_attention: bool = False,
) -> float:
    """Total activation residency for one micro-batch across all layers.

    Includes the LM-head logits term and, under checkpointing, one layer's
    full working set (the layer currently being recomputed).
    """
    if micro_batch < 1:
        raise ValueError("micro_batch must be >= 1")
    s = seq if seq is not None else config.seq
    tokens = micro_batch * s
    per_layer = activation_bytes_per_token(
        config, s, checkpointing=checkpointing, flash_attention=flash_attention
    )
    total = per_layer * tokens * config.n_layers
    if checkpointing:
        working = activation_bytes_per_token(
            config, s, checkpointing=False, flash_attention=flash_attention
        )
        total += working * tokens  # one live layer being recomputed
    return total + logits_bytes(config, tokens)


@dataclass(frozen=True)
class MemoryBreakdown:
    """A labelled memory accounting used in reports and tests."""

    params_fp16: int
    grads_fp16: int
    optimizer_fp32: int
    activations: float

    @property
    def total(self) -> float:
        return (
            self.params_fp16 + self.grads_fp16 + self.optimizer_fp32
            + self.activations
        )


def mixed_precision_breakdown(
    config: ModelConfig,
    micro_batch: int,
    seq: int | None = None,
    checkpointing: bool = False,
    flash_attention: bool = False,
) -> MemoryBreakdown:
    """Decompose the training footprint into the paper's §2.2 categories."""
    psi = param_count(config)
    return MemoryBreakdown(
        params_fp16=2 * psi,
        grads_fp16=2 * psi,
        optimizer_fp32=OPTIMIZER_STATE_BYTES_PER_PARAM * psi,
        activations=activation_bytes(
            config,
            micro_batch,
            seq,
            checkpointing=checkpointing,
            flash_attention=flash_attention,
        ),
    )
