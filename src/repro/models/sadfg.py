"""Superchip-aware dataflow graph (SA-DFG, paper §4.1).

Each vertex is a tensor operator carrying its compute cost on *both* the
Hopper GPU and the Grace CPU; each edge carries the bytes that would cross
NVLink-C2C if its endpoints land on different devices.  An offload strategy
is a two-way partition of this graph.

Two partitioners are provided:

* :func:`greedy_min_cut_partition` — the PCIe-era heuristic (ZeRO-Offload's
  edge-cut): pin compute-heavy ops to the GPU and cut the cheapest edges,
  minimizing communication volume.
* :func:`superchip_partition` — SuperOffload's objective: minimize modelled
  *iteration time* (eq. 1–3), which on a 900 GB/s link tolerates much more
  traffic in exchange for balanced utilization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable

import networkx as nx

from repro.hardware.bandwidth import BandwidthModel
from repro.hardware.specs import DeviceSpec
from repro.models.config import ModelConfig
from repro.models.estimators import param_count


class OpKind(enum.Enum):
    """Operator classes that appear in the training iteration DFG."""

    FORWARD = "forward"
    BACKWARD = "backward"
    OPTIMIZER = "optimizer"
    CAST = "cast"


@dataclass(frozen=True)
class OpCost:
    """Per-operator cost annotation.

    Attributes:
        kind: operator class.
        gpu_time: seconds if executed on the GPU.
        cpu_time: seconds if executed on the CPU.
        state_bytes: persistent state the op anchors (e.g. the optimizer
            vertex anchors the fp32 master/moment states).
    """

    kind: OpKind
    gpu_time: float
    cpu_time: float
    state_bytes: int = 0


class SADFG:
    """A directed acyclic graph of annotated operators."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def add_op(self, name: str, cost: OpCost) -> None:
        """Add an operator vertex."""
        if name in self.graph:
            raise ValueError(f"duplicate op {name!r}")
        self.graph.add_node(name, cost=cost)

    def add_flow(self, src: str, dst: str, nbytes: int) -> None:
        """Add a dataflow edge carrying ``nbytes`` if it crosses devices."""
        if src not in self.graph or dst not in self.graph:
            raise KeyError(f"unknown endpoint in flow {src!r} -> {dst!r}")
        self.graph.add_edge(src, dst, nbytes=nbytes)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(src, dst)
            raise ValueError(f"flow {src!r} -> {dst!r} would create a cycle")

    def ops(self) -> Iterable[str]:
        """Vertex names in topological order."""
        return nx.topological_sort(self.graph)

    def cost_of(self, name: str) -> OpCost:
        """Annotation of one vertex."""
        return self.graph.nodes[name]["cost"]

    def cut_bytes(self, assignment: Dict[str, str]) -> int:
        """Bytes crossing the device boundary under ``assignment``."""
        total = 0
        for src, dst, data in self.graph.edges(data=True):
            if assignment[src] != assignment[dst]:
                total += data["nbytes"]
        return total


def partition_cost(
    dfg: SADFG,
    assignment: Dict[str, str],
    link: BandwidthModel,
    overlap: float = 0.0,
) -> float:
    """Modelled iteration time of a partition.

    The GPU is the pacing resource: forward/backward always execute there,
    and a bucketized schedule hides up to ``overlap`` of the CPU work and
    the cut traffic behind it.  The exposed remainder — the tail that
    Figs. 3-4 show on the critical path — is charged in full.
    """
    if not 0 <= overlap < 1:
        raise ValueError("overlap must be in [0, 1)")
    gpu_time = 0.0
    cpu_time = 0.0
    for name in dfg.graph.nodes:
        cost = dfg.cost_of(name)
        if assignment[name] == "gpu":
            gpu_time += cost.gpu_time
        else:
            cpu_time += cost.cpu_time
    comm = link.transfer_time(dfg.cut_bytes(assignment))
    return gpu_time + (1 - overlap) * (cpu_time + comm)


def greedy_min_cut_partition(dfg: SADFG) -> Dict[str, str]:
    """The PCIe-era heuristic: forward/backward on GPU, optimizer (and the
    casts feeding it) on CPU — the assignment that minimizes link volume for
    mixed-precision training (§3, §4.5)."""
    assignment: Dict[str, str] = {}
    for name in dfg.graph.nodes:
        kind = dfg.cost_of(name).kind
        assignment[name] = "cpu" if kind in (OpKind.OPTIMIZER, OpKind.CAST) else "gpu"
    return assignment


def superchip_partition(
    dfg: SADFG,
    link: BandwidthModel,
    gpu_memory_budget: int,
    overlap: float = 0.8,
) -> Dict[str, str]:
    """SuperOffload's partition: start from the min-cut assignment, then pull
    optimizer vertices back onto the GPU — most-expensive-first — while the
    modelled iteration time improves and their state fits the budget (the
    bucketization-repartitioning idea of §4.3 expressed at DFG level).
    """
    assignment = greedy_min_cut_partition(dfg)
    best_cost = partition_cost(dfg, assignment, link, overlap)
    budget = gpu_memory_budget
    movable = sorted(
        (n for n in dfg.graph.nodes if dfg.cost_of(n).kind == OpKind.OPTIMIZER),
        key=lambda n: dfg.cost_of(n).cpu_time,
        reverse=True,
    )
    for name in movable:
        state = dfg.cost_of(name).state_bytes
        if state > budget:
            continue
        trial = dict(assignment)
        trial[name] = "gpu"
        # Casts feeding a GPU-resident optimizer are free on GPU.
        for pred in dfg.graph.predecessors(name):
            if dfg.cost_of(pred).kind == OpKind.CAST:
                trial[pred] = "gpu"
        cost = partition_cost(dfg, trial, link, overlap)
        if cost < best_cost:
            assignment = trial
            best_cost = cost
            budget -= state
    return assignment


def build_training_sadfg(
    config: ModelConfig,
    gpu: DeviceSpec,
    cpu: DeviceSpec,
    micro_batch: int,
    n_buckets: int = 8,
    seq: int | None = None,
) -> SADFG:
    """Construct the per-iteration SA-DFG for one model.

    Layer-granular forward/backward vertices feed bucket-granular optimizer
    vertices (with their FP16->FP32 cast producers), matching the structure
    the engine schedules (§4.3).
    """
    from repro.sim.compute import ComputeModel  # local import: avoid cycle

    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    s = seq if seq is not None else config.seq
    tokens = micro_batch * s
    psi = param_count(config)
    gpu_model = ComputeModel(gpu)
    cpu_model = ComputeModel(cpu)

    dfg = SADFG()
    layer_params = psi / config.n_layers
    fwd_flops = 2 * layer_params * tokens
    bwd_flops = 4 * layer_params * tokens
    cpu_slowdown = gpu.achievable_flops / cpu.achievable_flops

    prev_fwd = None
    for i in range(config.n_layers):
        fwd = f"fwd.{i}"
        dfg.add_op(
            fwd,
            OpCost(
                OpKind.FORWARD,
                gpu_time=gpu_model.dense_time(fwd_flops, tokens, config.hidden),
                cpu_time=gpu_model.dense_time(fwd_flops, tokens, config.hidden)
                * cpu_slowdown,
            ),
        )
        if prev_fwd is not None:
            dfg.add_flow(prev_fwd, fwd, 2 * config.hidden * tokens)
        prev_fwd = fwd
    prev_bwd = None
    for i in reversed(range(config.n_layers)):
        bwd = f"bwd.{i}"
        dfg.add_op(
            bwd,
            OpCost(
                OpKind.BACKWARD,
                gpu_time=gpu_model.dense_time(bwd_flops, tokens, config.hidden),
                cpu_time=gpu_model.dense_time(bwd_flops, tokens, config.hidden)
                * cpu_slowdown,
            ),
        )
        dfg.add_flow(f"fwd.{i}", bwd, 2 * config.hidden * tokens)
        if prev_bwd is not None:
            dfg.add_flow(prev_bwd, bwd, 2 * config.hidden * tokens)
        prev_bwd = bwd

    bucket_params = psi // n_buckets
    layers_per_bucket = max(1, config.n_layers // n_buckets)
    for b in range(n_buckets):
        cast = f"cast.{b}"
        step = f"step.{b}"
        grad_fp32 = 4 * bucket_params
        dfg.add_op(
            cast,
            OpCost(
                OpKind.CAST,
                gpu_time=1.5 * grad_fp32 / gpu.mem_bandwidth,
                cpu_time=1.5 * grad_fp32 / (cpu.mem_bandwidth * 0.5),
            ),
        )
        dfg.add_op(
            step,
            OpCost(
                OpKind.OPTIMIZER,
                gpu_time=gpu_model.adam_step_time(bucket_params, "gpu"),
                cpu_time=cpu_model.adam_step_time(bucket_params, "grace_adam"),
                state_bytes=12 * bucket_params,
            ),
        )
        # Buckets fill in backward order: bucket b collects the gradients of
        # the layers whose backward completes b-th.
        first_layer = config.n_layers - 1 - b * layers_per_bucket
        src_layer = max(0, first_layer - layers_per_bucket + 1)
        dfg.add_flow(f"bwd.{src_layer}", cast, 2 * bucket_params)
        dfg.add_flow(cast, step, grad_fp32)
    return dfg
