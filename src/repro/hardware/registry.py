"""Concrete hardware instances calibrated to the paper's Table 1.

``NODE_COMPARISON_TABLE`` reproduces Table 1 verbatim; :func:`gh200_superchip`
builds the simulator's GH200 model used by every experiment.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.bandwidth import BandwidthModel
from repro.hardware.specs import GB, GBPS, TFLOPS, DeviceSpec, LinkSpec, SuperchipSpec

# --- GH200 Grace Hopper Superchip (paper Fig. 2 + Table 1) -----------------

HOPPER_H100 = DeviceSpec(
    name="H100-GH200",
    kind="gpu",
    peak_flops=990 * TFLOPS,          # FP16 tensor core, Table 1
    mem_capacity=96 * GB,             # HBM3, §5.1
    mem_bandwidth=4000 * GBPS,        # Fig. 2
    achievable_fraction=0.62,         # achievable GEMM peak (§4.2 uses this)
)

# LPDDR5X capacities are decimal GB on the datasheet (480 GB = ~447 GiB).
GRACE_CPU = DeviceSpec(
    name="Grace",
    kind="cpu",
    peak_flops=3.0 * TFLOPS,          # Table 1
    mem_capacity=int(480e9),          # LPDDR5X, single-superchip config §5.1
    mem_bandwidth=500 * GBPS,         # Table 1 / Fig. 2
    achievable_fraction=0.8,
    cores=72,
)

GRACE_CPU_NVL2 = DeviceSpec(
    name="Grace-NVL2",
    kind="cpu",
    peak_flops=3.0 * TFLOPS,
    mem_capacity=int(240e9),          # NVL2 nodes carry 240 GB per chip §5.1
    mem_bandwidth=500 * GBPS,
    achievable_fraction=0.8,
    cores=72,
)

# NVLink-C2C: 900 GB/s total, 450 GB/s per direction.  The 18 µs message
# cost calibrates the Fig. 7 curve (~50 GB/s at 1 MB, ~90% peak at 64 MB).
NVLINK_C2C = LinkSpec(
    name="nvlink-c2c",
    peak_bandwidth=450 * GBPS,
    latency=18e-6,
    duplex=True,
    pageable_fraction=0.45,
)

# NVLink4 between Hopper GPUs inside a node (NVL2 pairs / NVSwitch).
NVLINK_GPU = LinkSpec(
    name="nvlink4",
    peak_bandwidth=450 * GBPS,
    latency=8e-6,
    duplex=True,
    pageable_fraction=1.0,
)

# Node-local NVMe (Gen4 x4 drives as deployed on Delta-class GH200 nodes):
# the tier ZeRO-Infinity can spill optimizer states to (§2.2; the paper's
# evaluation disables it for fairness, our extension experiment enables it).
NVME = LinkSpec(
    name="nvme",
    peak_bandwidth=6.0 * GBPS,   # sequential read; writes are slower still
    latency=80e-6,
    duplex=False,
    pageable_fraction=1.0,
)
NVME_CAPACITY = int(3.5e12)      # usable bytes per superchip

# HPE/Cray Slingshot-11: 200 Gb/s per NIC (§5.1) = 25 GB/s.
SLINGSHOT_11 = LinkSpec(
    name="slingshot-11",
    peak_bandwidth=25 * GBPS,
    latency=2e-6,
    duplex=True,
    pageable_fraction=1.0,
)

GH200 = SuperchipSpec(name="GH200", gpu=HOPPER_H100, cpu=GRACE_CPU, c2c=NVLINK_C2C)
GH200_NVL2 = SuperchipSpec(
    name="GH200-NVL2", gpu=HOPPER_H100, cpu=GRACE_CPU_NVL2, c2c=NVLINK_C2C
)

# --- PCIe-era baselines (Table 1 rows) --------------------------------------

DGX2_V100 = DeviceSpec(
    name="V100",
    kind="gpu",
    peak_flops=125 * TFLOPS,
    mem_capacity=32 * GB,
    mem_bandwidth=900 * GBPS,
    achievable_fraction=0.55,
)
DGX2_XEON = DeviceSpec(
    name="Xeon",
    kind="cpu",
    peak_flops=2.07 * TFLOPS,
    mem_capacity=512 * GB,
    mem_bandwidth=100 * GBPS,
    achievable_fraction=0.8,
    cores=24,
)
PCIE3_X16 = LinkSpec("pcie3-x16", 32 * GBPS, latency=12e-6, pageable_fraction=0.5)

DGX2 = SuperchipSpec(name="DGX-2", gpu=DGX2_V100, cpu=DGX2_XEON, c2c=PCIE3_X16)

DGXA100_A100 = DeviceSpec(
    name="A100",
    kind="gpu",
    peak_flops=312 * TFLOPS,
    mem_capacity=80 * GB,
    mem_bandwidth=2000 * GBPS,
    achievable_fraction=0.58,
)
DGXA100_ROME = DeviceSpec(
    name="Rome",
    kind="cpu",
    peak_flops=2.3 * TFLOPS,
    mem_capacity=1024 * GB,
    mem_bandwidth=150 * GBPS,
    achievable_fraction=0.8,
    cores=64,
)
PCIE4_X16 = LinkSpec("pcie4-x16", 64 * GBPS, latency=10e-6, pageable_fraction=0.5)

DGX_A100 = SuperchipSpec(
    name="DGX-A100", gpu=DGXA100_A100, cpu=DGXA100_ROME, c2c=PCIE4_X16
)

GH200_NVL2_NODE = GH200_NVL2  # alias used by multi-node experiment configs

# Table 1 rows, in the paper's units, keyed by node architecture.
NODE_COMPARISON_TABLE: Dict[str, Dict[str, float]] = {
    "DGX-2": {
        "cpu_bw_gbps": 100,
        "cpu_gpu_bw_gbps": 32,
        "cpu_cores": 24,
        "cpu_tflops": 2.07,
        "gpu_tflops": 125.0,
    },
    "DGX-A100": {
        "cpu_bw_gbps": 150,
        "cpu_gpu_bw_gbps": 64,
        "cpu_cores": 64,
        "cpu_tflops": 2.3,
        "gpu_tflops": 312.0,
    },
    "GH": {
        "cpu_bw_gbps": 500,
        "cpu_gpu_bw_gbps": 900,
        "cpu_cores": 72,
        "cpu_tflops": 3.0,
        "gpu_tflops": 990.0,
    },
}


def node_comparison_rows() -> List[dict]:
    """Table 1 including the derived GPU/CPU FLOPS ratio row."""
    rows = []
    for arch, row in NODE_COMPARISON_TABLE.items():
        full = dict(row)
        full["arch"] = arch
        full["gpu_cpu_flops_ratio"] = row["gpu_tflops"] / row["cpu_tflops"]
        rows.append(full)
    return rows


def gh200_superchip(nvl2: bool = False) -> SuperchipSpec:
    """The GH200 model used by the experiments.

    Args:
        nvl2: use the 240 GB-per-chip NVL2 node configuration instead of the
            480 GB single-superchip configuration (§5.1).
    """
    return GH200_NVL2 if nvl2 else GH200


def c2c_bandwidth_model() -> BandwidthModel:
    """Bandwidth model of the GH200 NVLink-C2C link (Fig. 7)."""
    return BandwidthModel(NVLINK_C2C)
