"""Device and interconnect specifications.

Units are SI throughout: bytes, bytes/second, FLOP/second, seconds.
Convenience constructors accept the GB/s / TFLOPS units the paper's Table 1
uses.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024**3
GBPS = 1e9  # vendors quote decimal GB/s for bandwidths
TFLOPS = 1e12


@dataclass(frozen=True)
class DeviceSpec:
    """A compute device (GPU or CPU) and its attached memory.

    Attributes:
        name: human-readable identifier, e.g. ``"H100"`` or ``"Grace"``.
        kind: ``"gpu"`` or ``"cpu"``.
        peak_flops: theoretical peak FLOP/s (tensor-core FP16/BF16 for GPUs).
        achievable_fraction: fraction of :attr:`peak_flops` reachable by the
            dense transformer kernels at large tile sizes.  The paper's
            efficiency analysis (§4.2) explicitly uses the *achievable* peak
            rather than the datasheet number.
        mem_capacity: attached memory bytes (HBM for GPUs, DDR for CPUs).
        mem_bandwidth: attached memory bandwidth, bytes/s.
        cores: CPU core count (0 for GPUs).
    """

    name: str
    kind: str
    peak_flops: float
    mem_capacity: int
    mem_bandwidth: float
    achievable_fraction: float = 0.7
    cores: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"device kind must be 'gpu' or 'cpu', got {self.kind!r}")
        if not 0 < self.achievable_fraction <= 1:
            raise ValueError("achievable_fraction must be in (0, 1]")

    @property
    def achievable_flops(self) -> float:
        """Achievable peak FLOP/s used by the efficiency model (eq. 1)."""
        return self.peak_flops * self.achievable_fraction


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect between two memories.

    Attributes:
        name: e.g. ``"nvlink-c2c"``, ``"pcie4-x16"``, ``"slingshot-11"``.
        peak_bandwidth: peak *uni-directional* bandwidth, bytes/s.
        latency: per-message fixed cost, seconds.  Together with the peak
            bandwidth this produces the saturating effective-bandwidth curve
            the paper measures in Fig. 7.
        duplex: whether the two directions are independent channels.
        pageable_fraction: fraction of peak achieved when the host endpoint
            is pageable (unpinned) memory, forcing a bounce through a staging
            copy (§4.5).
    """

    name: str
    peak_bandwidth: float
    latency: float = 10e-6
    duplex: bool = True
    pageable_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.peak_bandwidth <= 0:
            raise ValueError("peak_bandwidth must be positive")
        if not 0 < self.pageable_fraction <= 1:
            raise ValueError("pageable_fraction must be in (0, 1]")


@dataclass(frozen=True)
class SuperchipSpec:
    """A tightly coupled GPU+CPU package (one GH200, one MI300A, ...).

    Attributes:
        name: package name, e.g. ``"GH200"``.
        gpu: the GPU die.
        cpu: the CPU die.
        c2c: the chip-to-chip interconnect between them.
    """

    name: str
    gpu: DeviceSpec
    cpu: DeviceSpec
    c2c: LinkSpec

    @property
    def flops_ratio(self) -> float:
        """GPU/CPU peak FLOPS ratio — the quantity the paper identifies as
        the root of the bucketization imbalance (~330 on GH200 vs ~60 on
        DGX-2, §4.3)."""
        return self.gpu.peak_flops / self.cpu.peak_flops
