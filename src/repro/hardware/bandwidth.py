"""Effective bandwidth as a function of message size (paper Fig. 7).

The paper measures that NVLink-C2C bandwidth grows with tensor size and
saturates around 64 MB, dropping as low as ~50 GB/s for small tensors — the
observation behind SuperOffload's 64 MB bucket size (§4.3) and behind
ZeRO-Infinity's poor showing (its small-bucket transfers sit on the left of
the curve, §5.2).

We model a transfer of ``n`` bytes as ``latency + n / peak`` seconds, which
yields the measured saturating curve: with an ~18 µs launch latency and a
450 GB/s uni-directional peak, effective bandwidth is ~50 GB/s at 1 MB and
~90% of peak at 64 MB, matching the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.hardware.specs import LinkSpec

MiB = 1024**2


@dataclass(frozen=True)
class BandwidthModel:
    """Latency/bandwidth transfer model for one link.

    Args:
        link: the interconnect being modelled.
    """

    link: LinkSpec

    def transfer_time(self, nbytes: int, pinned: bool = True) -> float:
        """Seconds to move ``nbytes`` across the link in one direction.

        Args:
            nbytes: message size in bytes.
            pinned: whether the host endpoint is page-locked.  Pageable
                transfers bounce through a staging buffer and achieve only
                ``link.pageable_fraction`` of peak (§4.5).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        peak = self.link.peak_bandwidth
        if not pinned:
            peak *= self.link.pageable_fraction
        return self.link.latency + nbytes / peak

    def effective_bandwidth(self, nbytes: int, pinned: bool = True) -> float:
        """Achieved bytes/s for a message of ``nbytes`` (the Fig. 7 y-axis)."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return nbytes / self.transfer_time(nbytes, pinned=pinned)

    def saturation_size(self, fraction: float = 0.9) -> int:
        """Smallest message size achieving ``fraction`` of peak bandwidth.

        For the calibrated C2C link this lands near the paper's 64 MB
        saturation point.
        """
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        # n / (lat + n/peak) = fraction * peak  =>  n = fraction*lat*peak/(1-fraction)
        n = fraction * self.link.latency * self.link.peak_bandwidth / (1 - fraction)
        return int(n)

    def sweep(
        self, sizes: Iterable[int], pinned: bool = True
    ) -> List[Tuple[int, float]]:
        """Return (size, effective GB/s) pairs — the Fig. 7 series."""
        return [
            (s, self.effective_bandwidth(s, pinned=pinned) / 1e9) for s in sizes
        ]


class LinkBandwidthTable:
    """A collection of named links with their bandwidth models.

    Topologies register every link (C2C, NVLink GPU-GPU, PCIe,
    Slingshot) here so schedule builders can price transfers uniformly.
    """

    def __init__(self) -> None:
        self._models: dict[str, BandwidthModel] = {}

    def register(self, link: LinkSpec) -> BandwidthModel:
        """Add a link; returns its bandwidth model."""
        model = BandwidthModel(link)
        self._models[link.name] = model
        return model

    def __getitem__(self, name: str) -> BandwidthModel:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"unknown link {name!r}; registered: {sorted(self._models)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def names(self) -> list[str]:
        """Registered link names."""
        return sorted(self._models)
