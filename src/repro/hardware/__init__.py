"""Hardware models for superchip and PCIe-era GPU nodes.

Everything here is calibrated against the paper's published measurements:
Table 1 (node architecture comparison), Fig. 7 (C2C bandwidth vs. tensor
size), Fig. 9 (casting cost on Hopper vs. Grace), and the GH200 architecture
overview (Fig. 2).  The models are consumed by the discrete-event simulator
in :mod:`repro.sim` and by the placement policies in :mod:`repro.core`.
"""

from repro.hardware.bandwidth import BandwidthModel, LinkBandwidthTable
from repro.hardware.casting import CastingModel, CastPathCost
from repro.hardware.specs import DeviceSpec, LinkSpec, SuperchipSpec
from repro.hardware.registry import (
    DGX2,
    DGX_A100,
    GH200,
    GH200_NVL2_NODE,
    NODE_COMPARISON_TABLE,
    gh200_superchip,
    node_comparison_rows,
)
from repro.hardware.topology import ClusterTopology, NumaBinding, SuperchipNode

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "SuperchipSpec",
    "BandwidthModel",
    "LinkBandwidthTable",
    "CastingModel",
    "CastPathCost",
    "DGX2",
    "DGX_A100",
    "GH200",
    "GH200_NVL2_NODE",
    "NODE_COMPARISON_TABLE",
    "gh200_superchip",
    "node_comparison_rows",
    "SuperchipNode",
    "ClusterTopology",
    "NumaBinding",
]
