"""Mixed-precision casting cost models (paper §4.5, Fig. 9).

Offloaded mixed-precision training must pick where the FP16↔FP32 conversion
happens relative to the GPU↔CPU transfer:

* ``cast_cpu_move_fp16`` — the classic ZeRO-Offload greedy edge cut: move
  the *smaller* FP16 payload across the link, cast to FP32 on the CPU.  On a
  superchip this is a false economy: the transfer lands in an unpinned
  temporary buffer (pageable DMA) and the cast runs at CPU memory bandwidth.
* ``cast_gpu_move_fp32`` — SuperOffload's choice: cast on the GPU at HBM
  bandwidth and move the FP32 payload over pinned DMA at full C2C speed.

The paper measures the CPU path to be about 2× slower across the
256 MB – 2 GB range (Fig. 9); this model reproduces that crossover from the
underlying bandwidth numbers rather than hard-coding the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.hardware.bandwidth import BandwidthModel
from repro.hardware.specs import DeviceSpec


@dataclass(frozen=True)
class CastPathCost:
    """Cost breakdown of one casting+transfer strategy for one tensor.

    Attributes:
        path: ``"cast_gpu_move_fp32"`` or ``"cast_cpu_move_fp16"``.
        cast_time: seconds spent in the dtype conversion kernel.
        move_time: seconds spent on the link.
    """

    path: str
    cast_time: float
    move_time: float

    @property
    def total(self) -> float:
        """End-to-end seconds (cast and move are serialized per tensor)."""
        return self.cast_time + self.move_time


@dataclass(frozen=True)
class CastingModel:
    """Prices the two casting strategies for a given superchip.

    Args:
        gpu: the GPU die (its memory bandwidth bounds GPU-side casts).
        cpu: the CPU die (its memory bandwidth bounds CPU-side casts).
        c2c: bandwidth model of the chip-to-chip link.
        gpu_cast_efficiency: fraction of HBM bandwidth the cast kernel
            sustains (reads fp16/fp32, writes the other; launch overheads and
            unfused elementwise traffic keep it around half of peak).
        cpu_cast_efficiency: fraction of CPU DDR bandwidth the SIMD cast
            loop sustains.  Even at a high fraction, Grace's 500 GB/s DDR is
            an order of magnitude below Hopper's HBM, which is why the CPU
            path loses despite moving half the bytes (Fig. 9).
    """

    gpu: DeviceSpec
    cpu: DeviceSpec
    c2c: BandwidthModel
    gpu_cast_efficiency: float = 0.55
    cpu_cast_efficiency: float = 0.75

    def _cast_time(self, fp32_bytes: int, device: DeviceSpec, efficiency: float) -> float:
        # A cast touches fp16 + fp32 copies: 1.5x the fp32 payload in traffic.
        traffic = 1.5 * fp32_bytes
        return traffic / (device.mem_bandwidth * efficiency)

    def cast_gpu_move_fp32(self, fp32_bytes: int) -> CastPathCost:
        """SuperOffload's path: cast on Hopper, DMA the FP32 payload pinned."""
        cast = self._cast_time(fp32_bytes, self.gpu, self.gpu_cast_efficiency)
        move = self.c2c.transfer_time(fp32_bytes, pinned=True)
        return CastPathCost("cast_gpu_move_fp32", cast, move)

    def cast_cpu_move_fp16(self, fp32_bytes: int) -> CastPathCost:
        """ZeRO-Offload's path: move the FP16 payload (pageable), cast on Grace."""
        fp16_bytes = fp32_bytes // 2
        move = self.c2c.transfer_time(fp16_bytes, pinned=False)
        cast = self._cast_time(fp32_bytes, self.cpu, self.cpu_cast_efficiency)
        return CastPathCost("cast_cpu_move_fp16", cast, move)

    def preferred_path(self, fp32_bytes: int) -> CastPathCost:
        """The cheaper strategy for this payload — SuperOffload picks this
        per-bucket (superchip-aware casting, §4.5)."""
        gpu_path = self.cast_gpu_move_fp32(fp32_bytes)
        cpu_path = self.cast_cpu_move_fp16(fp32_bytes)
        return gpu_path if gpu_path.total <= cpu_path.total else cpu_path

    def sweep(self, fp32_sizes: Iterable[int]) -> List[dict]:
        """Fig. 9 series: per-size timing of both paths and their ratio."""
        rows = []
        for size in fp32_sizes:
            gpu_path = self.cast_gpu_move_fp32(size)
            cpu_path = self.cast_cpu_move_fp16(size)
            rows.append(
                {
                    "fp32_bytes": size,
                    "cast_gpu_move_fp32_ms": gpu_path.total * 1e3,
                    "cast_cpu_move_fp16_ms": cpu_path.total * 1e3,
                    "cpu_over_gpu_ratio": cpu_path.total / gpu_path.total,
                }
            )
        return rows
