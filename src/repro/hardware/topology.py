"""Node and cluster topologies, including NUMA binding (§4.7).

A :class:`SuperchipNode` groups ``K`` superchips, each its own NUMA node.
The launcher-level concern the paper raises — a training process scheduled
onto cores of a *different* Grace CPU than the one paired with its GPU —
is modelled by :class:`NumaBinding`: a mis-bound process pays the
inter-superchip link for every GPU↔CPU transfer instead of NVLink-C2C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.hardware.bandwidth import BandwidthModel, LinkBandwidthTable
from repro.hardware.specs import LinkSpec, SuperchipSpec
from repro.tensors.memory import MemoryPool


@dataclass
class NumaBinding:
    """Maps training processes (ranks) to CPU cores / NUMA nodes.

    Args:
        n_superchips: superchips in the node.
        cores_per_cpu: cores on each Grace CPU.
    """

    n_superchips: int
    cores_per_cpu: int
    _assignment: Dict[int, int] = field(default_factory=dict)

    def bind_affine(self) -> None:
        """SuperOffload's policy: rank ``i`` pinned to superchip ``i``'s cores."""
        self._assignment = {rank: rank for rank in range(self.n_superchips)}

    def bind_random(self, seed: int = 0) -> None:
        """A naive launcher: ranks land on arbitrary NUMA nodes.

        Deterministic given ``seed`` (rotates the assignment), guaranteeing
        at least one mis-bound rank for ``n_superchips > 1``.
        """
        shift = 1 + seed % max(1, self.n_superchips - 1)
        self._assignment = {
            rank: (rank + shift) % self.n_superchips
            for rank in range(self.n_superchips)
        }

    def numa_node_of(self, rank: int) -> int:
        """NUMA node whose cores run ``rank``'s CPU work."""
        if rank not in self._assignment:
            raise KeyError(f"rank {rank} has no binding; call bind_affine/bind_random")
        return self._assignment[rank]

    def core_range_of(self, rank: int) -> Tuple[int, int]:
        """Half-open core index range assigned to ``rank``."""
        node = self.numa_node_of(rank)
        return node * self.cores_per_cpu, (node + 1) * self.cores_per_cpu

    def is_colocated(self, rank: int) -> bool:
        """Whether the rank's CPU cores sit on the same superchip as its GPU."""
        return self.numa_node_of(rank) == rank


class SuperchipNode:
    """A K-way superchip node (e.g. a quad-GH200 or a GH200-NVL2 pair).

    Each superchip contributes one GPU memory pool and one CPU memory pool;
    GPUs within the node are connected by NVLink, and every GPU reaches its
    *own* Grace CPU over NVLink-C2C.  Reaching a *remote* Grace CPU (the
    mis-binding case) goes through the inter-superchip link.

    Args:
        chip: the superchip specification replicated K times.
        n_superchips: K.
        gpu_link: GPU↔GPU link inside the node.
        inter_superchip_link: link used by mis-bound CPU traffic; defaults
            to the GPU link (NVLink fabric) which is still far slower than
            C2C for CPU traffic once protocol overheads are included.
        gpu_reserved: bytes reserved on each GPU (context + framework).
        cpu_reserved: bytes reserved on each CPU (OS + runtime).
    """

    def __init__(
        self,
        chip: SuperchipSpec,
        n_superchips: int,
        gpu_link: LinkSpec | None = None,
        inter_superchip_link: LinkSpec | None = None,
        gpu_reserved: int = 2 * 1024**3,
        cpu_reserved: int = 8 * 1024**3,
    ):
        if n_superchips < 1:
            raise ValueError("n_superchips must be >= 1")
        self.chip = chip
        self.n_superchips = n_superchips
        self.links = LinkBandwidthTable()
        self.c2c = self.links.register(chip.c2c)
        if gpu_link is None:
            gpu_link = LinkSpec("intra-node", chip.c2c.peak_bandwidth, latency=8e-6)
        self.gpu_link = self.links.register(gpu_link)
        if inter_superchip_link is None:
            inter_superchip_link = LinkSpec(
                "inter-superchip",
                gpu_link.peak_bandwidth * 0.25,
                latency=25e-6,
            )
        self.inter_superchip = self.links.register(inter_superchip_link)
        self.gpu_pools = [
            MemoryPool(f"gpu:{i}", chip.gpu.mem_capacity, reserved=gpu_reserved)
            for i in range(n_superchips)
        ]
        self.cpu_pools = [
            MemoryPool(f"cpu:{i}", chip.cpu.mem_capacity, reserved=cpu_reserved)
            for i in range(n_superchips)
        ]
        self.numa = NumaBinding(n_superchips, chip.cpu.cores)
        self.numa.bind_affine()

    def host_link_for(self, rank: int) -> BandwidthModel:
        """The link a rank's GPU↔CPU traffic actually uses, given binding."""
        if self.numa.is_colocated(rank):
            return self.c2c
        return self.inter_superchip

    def reset_memory(self) -> None:
        """Fresh memory pools (used between feasibility probes)."""
        for i, pool in enumerate(self.gpu_pools):
            self.gpu_pools[i] = MemoryPool(
                pool.device, pool.capacity, reserved=pool.reserved
            )
        for i, pool in enumerate(self.cpu_pools):
            self.cpu_pools[i] = MemoryPool(
                pool.device, pool.capacity, reserved=pool.reserved
            )


class ClusterTopology:
    """Multiple superchip nodes joined by a network (Slingshot-11 in §5.1).

    Args:
        node: the per-node topology, replicated.
        n_nodes: node count.
        network: the inter-node link (per-NIC uni-directional bandwidth).
    """

    def __init__(self, node: SuperchipNode, n_nodes: int, network: LinkSpec):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.node = node
        self.n_nodes = n_nodes
        self.network = BandwidthModel(network)

    @property
    def world_size(self) -> int:
        """Total GPU (= superchip) count across the cluster."""
        return self.node.n_superchips * self.n_nodes

    def link_between(self, rank_a: int, rank_b: int) -> BandwidthModel:
        """The link used by point-to-point traffic between two ranks."""
        per_node = self.node.n_superchips
        if rank_a // per_node == rank_b // per_node:
            return self.node.gpu_link
        return self.network

    def slowest_link_bandwidth(self) -> float:
        """Bottleneck uni-directional bandwidth for world-spanning collectives."""
        if self.n_nodes == 1:
            return self.node.gpu_link.link.peak_bandwidth
        return min(
            self.node.gpu_link.link.peak_bandwidth,
            self.network.link.peak_bandwidth,
        )
