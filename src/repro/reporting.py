"""Plain-text table rendering shared by the CLI and benchmark harnesses."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_cell(value) -> str:
    """Render one table cell (floats to 2 dp; None as OOM).

    Non-finite floats render as ``"NaN"`` / ``"inf"`` / ``"-inf"`` so a
    poisoned metric is never mistaken for a small measured value (the
    default ``f"{nan:.2f}"`` prints a lowercase ``nan`` that blends into
    data columns).
    """
    if value is None:
        return "OOM"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:.2f}"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Build an aligned text table."""
    body = [[format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in body)) if body else len(h)
        for i, h in enumerate(headers)
    ]
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines = [f"\n=== {title} ===", header_line, "-" * len(header_line)]
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> None:
    """Print an aligned text table to stdout."""
    print(format_table(title, headers, rows))
