"""Flight recorder: a bounded ring of recent telemetry, dumped on crash.

Long training runs fail at hour N with nothing but a traceback; the
paper's engineering sections (§4.6's rollback machinery in particular)
exist because failures in the optimizer path are time-correlated with
what the step was doing *just before*.  :class:`FlightRecorder` keeps the
last ``capacity`` closed spans (via the tracer's close hooks — zero cost
beyond the append) plus a metrics snapshot, and writes them as JSONL when
asked — or automatically, when installed, on an unhandled exception or a
termination signal.

The dump is plain JSONL (one object per line, ``kind`` discriminated:
``header`` / ``span`` / ``metric``) so it needs no reader library — the
triage workflow is ``tail`` and ``grep``.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import types
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.telemetry import Telemetry
from repro.telemetry.tracer import Span

#: Schema marker on the header line, bumped on layout changes.
FLIGHT_SCHEMA_VERSION = 1

#: Signals the recorder hooks when ``install(on_signals=True)``.
_DEFAULT_SIGNALS = ("SIGTERM", "SIGINT")


class FlightRecorder:
    """Ring buffer of recent spans with crash-triggered JSONL dumps.

    Args:
        telemetry: enabled telemetry to observe (its tracer gains a
            close hook; the numeric path is untouched).
        capacity: span ring size — old spans fall off the back.
    """

    def __init__(self, telemetry: Telemetry, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.telemetry = telemetry
        self.capacity = capacity
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._installed = False
        self._dump_path: Optional[str] = None
        self._prev_excepthook = None
        self._prev_handlers: Dict[int, Any] = {}
        telemetry.tracer.add_close_hook(self._on_span_close)

    def _on_span_close(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)

    @property
    def spans(self) -> List[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._ring)

    # -- dumping --------------------------------------------------------

    def _metric_lines(self) -> List[Dict[str, Any]]:
        lines: List[Dict[str, Any]] = []
        for kind, inst in self.telemetry.metrics:
            row: Dict[str, Any] = {
                "kind": "metric",
                "metric_kind": kind,
                "name": inst.name,
                "labels": dict(inst.labels),
            }
            if kind == "histogram":
                row["summary"] = inst.summary()
            else:
                row["value"] = inst.value
            lines.append(row)
        return lines

    def dump(self, path: str, reason: str = "manual") -> int:
        """Write header + retained spans + metric snapshot as JSONL.

        Returns the number of lines written.  Best-effort by design:
        callers in crash paths should not have a dump failure mask the
        original error, so wrap calls in try/except there (``install``'s
        hooks do).
        """
        lines: List[Dict[str, Any]] = [{
            "kind": "header",
            "schema": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "capacity": self.capacity,
            "retained": len(self._ring),
        }]
        for s in self.spans:
            lines.append({
                "kind": "span",
                "name": s.name,
                "category": s.category,
                "start": s.start,
                "finish": s.finish,
                "depth": s.depth,
                "thread": s.thread,
                "attrs": {k: repr(v) if not isinstance(
                    v, (str, int, float, bool, type(None))) else v
                    for k, v in s.attrs.items()},
            })
        lines.extend(self._metric_lines())
        with open(path, "w") as fh:
            for row in lines:
                fh.write(json.dumps(row) + "\n")
        return len(lines)

    # -- crash hooks ----------------------------------------------------

    def install(
        self,
        path: str,
        on_signals: bool = False,
    ) -> None:
        """Dump automatically on unhandled exceptions (and signals).

        Wraps ``sys.excepthook`` (chaining to the previous hook so normal
        traceback printing survives) and, with ``on_signals=True``, the
        SIGTERM/SIGINT handlers — each dumps the ring to ``path`` tagged
        with the trigger, then re-raises the default behaviour.  Signal
        handlers can only be set from the main thread; ``on_signals`` is
        silently skipped elsewhere.
        """
        if self._installed:
            raise RuntimeError("flight recorder already installed")
        self._installed = True
        self._dump_path = path
        self._prev_excepthook = sys.excepthook

        def excepthook(exc_type, exc, tb):
            try:
                self.dump(path, reason=f"exception:{exc_type.__name__}")
            except Exception:
                pass
            prev = self._prev_excepthook or sys.__excepthook__
            prev(exc_type, exc, tb)

        sys.excepthook = excepthook
        if on_signals and threading.current_thread() is threading.main_thread():
            for signame in _DEFAULT_SIGNALS:
                signum = getattr(signal, signame, None)
                if signum is None:
                    continue

                def handler(num, frame: Optional[types.FrameType],
                            _name=signame):
                    try:
                        self.dump(path, reason=f"signal:{_name}")
                    except Exception:
                        pass
                    prev = self._prev_handlers.get(num)
                    if callable(prev):
                        prev(num, frame)
                    else:
                        signal.signal(num, prev or signal.SIG_DFL)
                        signal.raise_signal(num)

                self._prev_handlers[signum] = signal.signal(signum, handler)

    def uninstall(self) -> None:
        """Restore the previous excepthook and signal handlers."""
        if not self._installed:
            return
        self._installed = False
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None
        if threading.current_thread() is threading.main_thread():
            for signum, prev in self._prev_handlers.items():
                signal.signal(signum, prev)
        self._prev_handlers.clear()
