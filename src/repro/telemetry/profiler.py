"""Step-scoped profiling: phase attribution, overlap audit, utilization.

The paper's performance story is a time-attribution story: §5's speedups
come from eliminating GPU idle during the optimizer phase, and Fig. 15's
near-zero idle claim is only checkable if every wall-clock millisecond of
a training step is attributed to a named phase.  :class:`StepProfiler`
does that attribution for the *running* numeric substrate, post hoc, from
the spans the :class:`~repro.telemetry.tracer.Tracer` already records:

* **Phase breakdown** — each ``train_step`` window is partitioned into
  elementary segments; the innermost mapped span covering a segment
  decides its phase (forward, backward, grad_reduce, optimizer, cast,
  validate, rollback, stall), and uncovered time is ``idle``.  Because
  the segments partition the window exactly, phase durations always sum
  to the step wall time — the invariant the property tests hold.
* **Overlap audit** — for each pipelined ``zero_step``, compares the
  achieved span duration against the serial sum of bucket reduces plus
  bucket Adams and against the overlap lower bound ``max(Σreduce,
  Σadam)``, yielding an efficiency in [0, 1] and the per-bucket bubble
  (``bucket_wait``) time.
* **Worker utilization** — per-worker busy/queue-wait/chunk counts read
  from the :class:`KernelPool`'s metrics, with a straggler ratio.
* **Memory high-water marks** — registered gauge callables are sampled
  every time a span closes (via the tracer's close hooks), keeping the
  maximum ever seen; sampling at phase boundaries catches the peaks the
  end-of-run gauges miss.

Everything is observation-only: the profiler never touches the numeric
path, so a profiled run is bitwise identical to an unprofiled one (which
:func:`profiler_overhead` verifies, along with the wall-clock cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry import MetricsRegistry, Span, Telemetry, Tracer

#: Every phase the attribution can produce, in report order.  ``idle`` is
#: the residual — step time no mapped span covers.
PHASES = (
    "forward",
    "backward",
    "grad_reduce",
    "optimizer",
    "cast",
    "validate",
    "rollback",
    "stall",
    "spill_wait",
    "checkpoint",
    "pp_send",
    "pp_recv",
    "pp_bubble",
    "prefill",
    "decode",
    "kv_evict",
    "dequant",
    "idle",
)

#: Span *names* with a definitive phase (checked before the category).
_NAME_PHASE = {
    "forward": "forward",
    "backward": "backward",
    "fwd_bwd": "backward",        # fallback for un-split compute spans
    "bucket_reduce": "grad_reduce",
    "grad_reduce": "grad_reduce",
    "param_gather": "grad_reduce",
    "bucket_wait": "stall",
    "spill_wait": "spill_wait",   # caller blocked on the spill worker
    "ckpt_capture": "checkpoint",
    "checkpoint": "checkpoint",
    # Pipeline parallelism: stage compute folds into forward/backward;
    # the p2p hops and schedule stalls get their own phases so 1F1B
    # bubble time no longer disappears into ``idle``.
    "pp_fwd": "forward",
    "pp_bwd": "backward",
    "pp_send": "pp_send",
    "pp_recv": "pp_recv",
    "pp_bubble": "pp_bubble",
    # Serving: the decode-step taxonomy.  Quantized linears claim their
    # time as ``dequant`` (they nest inside prefill/decode, and the
    # innermost span wins); cache eviction/restore is ``kv_evict``.
    "prefill": "prefill",
    "decode": "decode",
    "dequant": "dequant",
    "kv_evict": "kv_evict",
    "kv_restore": "kv_evict",
}

#: Span *categories* with a phase (used when the name is unmapped).
_CATEGORY_PHASE = {
    "optim": "optimizer",
    "validate": "validate",
    "rollback": "rollback",
    "cast": "cast",
    "comm": "grad_reduce",
    "collective": "grad_reduce",
    "stall": "stall",
    "checkpoint": "checkpoint",
    "pp_comm": "pp_send",     # unnamed p2p traffic counts as send time
    "pp_stall": "pp_bubble",
    "quant": "dequant",
    "kvcache": "kv_evict",
}


def phase_of(span: Span) -> Optional[str]:
    """The phase a span attributes its time to, or ``None`` if unmapped.

    Unmapped spans (``train_step`` itself, ``iteration``, ...) are pure
    structure: they never claim time, they only contain spans that do.
    """
    phase = _NAME_PHASE.get(span.name)
    if phase is not None:
        return phase
    return _CATEGORY_PHASE.get(span.category)


@dataclass(frozen=True)
class PhaseSegment:
    """One attributed slice of a step window (for timeline export)."""

    phase: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class StepBreakdown:
    """Phase attribution of one ``train_step`` window."""

    iteration: int
    start: float
    finish: float
    phase_seconds: Dict[str, float]
    segments: List[PhaseSegment] = field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        return self.finish - self.start

    @property
    def idle_fraction(self) -> float:
        wall = self.wall_seconds
        if wall <= 0:
            return 0.0
        return self.phase_seconds.get("idle", 0.0) / wall


@dataclass(frozen=True)
class OverlapAudit:
    """Achieved-vs-serial accounting for one pipelined ``zero_step``.

    Attributes:
        buckets: bucket count of the pipelined step.
        achieved_seconds: wall duration of the ``zero_step`` span.
        serial_seconds: Σ bucket_reduce + Σ bucket_adam — what a fully
            serial execution of the same kernels would have cost.
        lower_bound_seconds: max(Σ reduce, Σ adam) — perfect overlap.
        bubble_seconds: Σ bucket_wait — time the consumer stalled on a
            not-yet-reduced bucket.
        efficiency: 0 = no better than serial, 1 = at the lower bound;
            clamped to [0, 1].
        spill_read_seconds: Σ ``spill_read`` I/O-thread span time inside
            the window (disk-offloaded steps; 0.0 otherwise).
        spill_write_seconds: Σ ``spill_write`` likewise.
        spill_wait_seconds: Σ ``spill_wait`` — time the *calling* thread
            actually blocked on the spill worker.
        spill_overlap_efficiency: fraction of the spill I/O time hidden
            behind compute, ``1 - wait / (read + write)`` clamped to
            [0, 1]; ``None`` when the step did no spill I/O.
    """

    buckets: int
    achieved_seconds: float
    serial_seconds: float
    lower_bound_seconds: float
    bubble_seconds: float
    efficiency: float
    spill_read_seconds: float = 0.0
    spill_write_seconds: float = 0.0
    spill_wait_seconds: float = 0.0
    spill_overlap_efficiency: Optional[float] = None


@dataclass(frozen=True)
class WorkerUtilization:
    """One KernelPool worker's share of the profiled window."""

    worker: int
    chunks: int
    busy_seconds: float
    queue_wait_seconds: float
    utilization: float  # busy / profiled window


@dataclass
class MemoryWatermark:
    """Running maximum of one registered memory gauge."""

    name: str
    peak_bytes: float = 0.0
    samples: int = 0


@dataclass
class ProfileReport:
    """Everything :meth:`StepProfiler.report` computes, in one place."""

    steps: List[StepBreakdown]
    phase_totals: Dict[str, float]
    wall_seconds: float
    overlap: List[OverlapAudit]
    workers: List[WorkerUtilization]
    watermarks: List[MemoryWatermark]

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def phase_share(self, phase: str) -> float:
        """Fraction of total step wall time spent in ``phase``."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.phase_totals.get(phase, 0.0) / self.wall_seconds

    @property
    def mean_overlap_efficiency(self) -> Optional[float]:
        if not self.overlap:
            return None
        return sum(a.efficiency for a in self.overlap) / len(self.overlap)


def _attribute_window(
    spans: Sequence[Span], start: float, finish: float
) -> Tuple[Dict[str, float], List[PhaseSegment]]:
    """Partition ``[start, finish)`` into phases (innermost span wins).

    ``spans`` must already be filtered to mapped, closed spans overlapping
    the window on the step's own thread.  The sweep cuts the window at
    every span boundary; each elementary segment is attributed to the
    deepest (most nested) span covering it, or to ``idle`` if none does.
    The segments partition the window exactly, so the returned durations
    sum to ``finish - start`` up to float addition error.
    """
    cuts = {start, finish}
    for s in spans:
        if s.finish is None:
            continue
        cuts.add(min(max(s.start, start), finish))
        cuts.add(min(max(s.finish, start), finish))
    edges = sorted(cuts)
    seconds: Dict[str, float] = {}
    segments: List[PhaseSegment] = []
    for lo, hi in zip(edges, edges[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        best: Optional[Span] = None
        for s in spans:
            if s.finish is None or not (s.start <= mid < s.finish):
                continue
            if best is None or s.depth > best.depth:
                best = s
        phase = phase_of(best) if best is not None else None
        phase = phase if phase is not None else "idle"
        seconds[phase] = seconds.get(phase, 0.0) + (hi - lo)
        if segments and segments[-1].phase == phase \
                and segments[-1].finish == lo:
            segments[-1] = PhaseSegment(phase, segments[-1].start, hi)
        else:
            segments.append(PhaseSegment(phase, lo, hi))
    return seconds, segments


class StepProfiler:
    """Owns a :class:`Telemetry` and turns its spans into a profile.

    Typical use::

        profiler = StepProfiler()
        trainer = STVTrainer(..., telemetry=profiler.telemetry)
        profiler.watch_memory("workspace", lambda: ws.peak_bytes)
        trainer.run(n)
        report = profiler.report()

    Args:
        telemetry: an *enabled* telemetry to wrap; a fresh one is built
            if omitted.  Must carry a real :class:`Tracer` — profiling a
            null telemetry would observe nothing.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None):
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if not self.telemetry.enabled:
            raise ValueError("StepProfiler needs an enabled Telemetry")
        self._watchers: Dict[str, Callable[[], float]] = {}
        self._watermarks: Dict[str, MemoryWatermark] = {}
        self.telemetry.tracer.add_close_hook(self._on_span_close)

    @property
    def tracer(self) -> Tracer:
        return self.telemetry.tracer

    @property
    def metrics(self) -> MetricsRegistry:
        return self.telemetry.metrics

    # -- memory watermarks ---------------------------------------------

    def watch_memory(self, name: str, sample: Callable[[], float]) -> None:
        """Sample ``sample()`` at every span close; keep the maximum.

        The callable must be cheap and side-effect free (e.g. ``lambda:
        arena.flat.nbytes`` or ``lambda: pool.capacity - pool.free_bytes``).
        The running peak lands in the ``profile_highwater_bytes`` gauge
        labeled ``source=name``.
        """
        self._watchers[name] = sample
        self._watermarks.setdefault(name, MemoryWatermark(name))

    def _on_span_close(self, span: Span) -> None:
        for name, sample in self._watchers.items():
            try:
                value = float(sample())
            except Exception:
                continue  # a watcher must never break the traced path
            mark = self._watermarks[name]
            mark.samples += 1
            if value > mark.peak_bytes:
                mark.peak_bytes = value
                self.metrics.gauge(
                    "profile_highwater_bytes", source=name
                ).set(value)

    # -- analysis ------------------------------------------------------

    def _step_spans(self) -> List[Span]:
        # ``serve_step`` is the inference twin of ``train_step``: same
        # window semantics, different phase population.
        return [
            s for s in self.tracer.spans
            if s.name in ("train_step", "serve_step")
            and s.category == "step" and s.finish is not None
        ]

    def step_breakdowns(self) -> List[StepBreakdown]:
        """Phase attribution for every recorded step window
        (``train_step`` or ``serve_step``)."""
        spans = self.tracer.spans
        out: List[StepBreakdown] = []
        for step in self._step_spans():
            inner = [
                s for s in spans
                if s is not step and s.finish is not None
                and s.thread == step.thread
                and s.finish > step.start and s.start < step.finish
                and phase_of(s) is not None
            ]
            seconds, segments = _attribute_window(
                inner, step.start, step.finish
            )
            out.append(StepBreakdown(
                iteration=int(step.attrs.get("iteration", len(out))),
                start=step.start,
                finish=step.finish,
                phase_seconds=seconds,
                segments=segments,
            ))
        return out

    def overlap_audits(self) -> List[OverlapAudit]:
        """One audit per pipelined ``zero_step`` span."""
        spans = self.tracer.spans
        audits: List[OverlapAudit] = []
        for z in spans:
            if z.name != "zero_step" or not z.attrs.get("pipelined"):
                continue
            if z.finish is None:
                continue
            inside = [
                s for s in spans
                if s.finish is not None
                and s.start >= z.start and s.finish <= z.finish
            ]
            reduce_s = sum(
                s.duration for s in inside if s.name == "bucket_reduce"
            )
            adam_s = sum(
                s.duration for s in inside if s.name == "bucket_adam"
            )
            bubble_s = sum(
                s.duration for s in inside if s.name == "bucket_wait"
            )
            # Spill I/O runs on the spill worker thread; its spans land
            # inside the window because the collection above is
            # deliberately thread-agnostic.  spill_wait spans are the
            # calling thread's *exposed* share of that I/O.
            spill_read_s = sum(
                s.duration for s in inside if s.name == "spill_read"
            )
            spill_write_s = sum(
                s.duration for s in inside if s.name == "spill_write"
            )
            spill_wait_s = sum(
                s.duration for s in inside if s.name == "spill_wait"
            )
            spill_io = spill_read_s + spill_write_s
            spill_eff: Optional[float] = None
            if spill_io > 0:
                spill_eff = min(1.0, max(0.0, 1.0 - spill_wait_s / spill_io))
            serial = reduce_s + adam_s
            lower = max(reduce_s, adam_s)
            achieved = z.duration
            if serial <= lower or serial <= 0:
                # Degenerate: one side is empty — overlap is undefined,
                # call perfect if we met the bound.
                efficiency = 1.0 if achieved <= serial else 0.0
            else:
                efficiency = (serial - achieved) / (serial - lower)
            audits.append(OverlapAudit(
                buckets=int(z.attrs.get("buckets", 0)),
                achieved_seconds=achieved,
                serial_seconds=serial,
                lower_bound_seconds=lower,
                bubble_seconds=bubble_s,
                efficiency=min(1.0, max(0.0, efficiency)),
                spill_read_seconds=spill_read_s,
                spill_write_seconds=spill_write_s,
                spill_wait_seconds=spill_wait_s,
                spill_overlap_efficiency=spill_eff,
            ))
        return audits

    def worker_utilization(self) -> List[WorkerUtilization]:
        """Per-worker KernelPool usage over the profiled wall window."""
        spans = self.tracer.spans
        if spans:
            window = (max(s.finish for s in spans if s.finish is not None)
                      - min(s.start for s in spans))
        else:
            window = 0.0
        per_worker: Dict[int, Dict[str, float]] = {}
        for kind, inst in self.metrics:
            labels = dict(inst.labels)
            if "worker" not in labels:
                continue
            w = int(labels["worker"])
            slot = per_worker.setdefault(
                w, {"chunks": 0.0, "busy": 0.0, "wait": 0.0}
            )
            if inst.name == "exec_chunks_total":
                slot["chunks"] = inst.value
            elif inst.name == "exec_busy_ms":
                slot["busy"] = inst.total / 1e3
            elif inst.name == "exec_queue_wait_ms":
                slot["wait"] = inst.total / 1e3
        return [
            WorkerUtilization(
                worker=w,
                chunks=int(slot["chunks"]),
                busy_seconds=slot["busy"],
                queue_wait_seconds=slot["wait"],
                utilization=(slot["busy"] / window if window > 0 else 0.0),
            )
            for w, slot in sorted(per_worker.items())
        ]

    def report(self) -> ProfileReport:
        """Aggregate breakdowns, audits, utilization, and watermarks."""
        steps = self.step_breakdowns()
        totals: Dict[str, float] = {}
        for b in steps:
            for phase, sec in b.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + sec
        return ProfileReport(
            steps=steps,
            phase_totals=totals,
            wall_seconds=sum(b.wall_seconds for b in steps),
            overlap=self.overlap_audits(),
            workers=self.worker_utilization(),
            watermarks=[
                self._watermarks[k] for k in sorted(self._watermarks)
            ],
        )


@dataclass(frozen=True)
class OverheadResult:
    """Outcome of :func:`profiler_overhead`."""

    baseline_seconds: float
    profiled_seconds: float
    overhead_pct: float
    bitwise_identical: bool


def profiler_overhead(
    iters: int = 3,
    repeats: int = 3,
    seed: int = 7,
    batch: int = 2,
) -> OverheadResult:
    """Measure the profiler's cost and verify it changes no result bit.

    Runs the STV trainer twice per repeat — once with the null telemetry,
    once under a :class:`StepProfiler` — on identical tiny configs, takes
    best-of-``repeats`` wall times for each side, and compares the loss
    sequences exactly.  The CI ``profile-smoke`` job asserts the overhead
    stays under its budget and the losses match bitwise.
    """
    import time

    # Imported lazily: repro.training imports repro.telemetry, so a
    # module-level import here would be a cycle.
    from repro.numeric.transformer import TransformerParams
    from repro.telemetry import NULL_TELEMETRY
    from repro.training.stv_trainer import STVTrainer

    spec = TransformerParams(
        vocab=64, max_seq=16, hidden=32, n_layers=2, n_heads=2
    )

    def run(telemetry) -> Tuple[float, List[float]]:
        trainer = STVTrainer(
            spec=spec, batch=batch, seed=seed, telemetry=telemetry
        )
        t0 = time.perf_counter()
        record = trainer.run(iters)
        return time.perf_counter() - t0, list(record.losses)

    base_best = prof_best = float("inf")
    base_losses: List[float] = []
    prof_losses: List[float] = []
    for _ in range(repeats):
        t, losses = run(NULL_TELEMETRY)
        if t < base_best:
            base_best = t
        base_losses = losses
        profiler = StepProfiler()
        t, losses = run(profiler.telemetry)
        if t < prof_best:
            prof_best = t
        prof_losses = losses
    overhead = (
        (prof_best - base_best) / base_best * 100.0 if base_best > 0 else 0.0
    )
    return OverheadResult(
        baseline_seconds=base_best,
        profiled_seconds=prof_best,
        overhead_pct=overhead,
        bitwise_identical=(base_losses == prof_losses),
    )
