"""Telemetry sinks: structured JSONL events and Chrome ``trace_event`` JSON.

Two serializations of the same underlying data:

* :func:`write_events_jsonl` — one JSON object per line, machine-mergeable
  (the schema is documented in README.md's Observability section);
* :func:`write_chrome_trace` — the Chrome ``trace_event`` format that
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
  directly.  Live :class:`~repro.telemetry.tracer.Tracer` spans and
  simulator :class:`~repro.sim.trace.Trace` intervals are serialized into
  *one* document on separate pids, so a real numeric run and its simulated
  counterpart line up in the same viewer: tracer threads map to Chrome
  tids, simulator resources (gpu/cpu/d2h/h2d) map to tids of their own
  process row.

All duration events are "complete" events (``"ph": "X"``) carrying the
keys Chrome requires: ``ph``, ``ts``, ``dur`` (microseconds), ``pid``,
``tid``, ``name``.  :func:`validate_chrome_trace` asserts exactly that and
is run by the tests and the ``repro trace`` CLI after every export.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.sim.trace import Trace
from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry
from repro.telemetry.tracer import NullTracer, Tracer

#: Bumped when the JSONL event schema changes shape.
JSONL_SCHEMA_VERSION = 1

#: pid of the live-tracer process row in exported Chrome traces; simulator
#: traces take consecutive pids after it.
LIVE_PID = 1

AnyTracer = Union[Tracer, NullTracer]
AnyRegistry = Union[MetricsRegistry, NullMetricsRegistry]


def _metadata_event(pid: int, tid: int, kind: str, label: str) -> Dict:
    # ts/dur are not meaningful on metadata events; zeros keep every event
    # carrying the full required key set (simplifies downstream validation).
    return {"ph": "M", "ts": 0, "dur": 0, "pid": pid, "tid": tid,
            "name": kind, "args": {"name": label}}


def chrome_events_from_tracer(
    tracer: AnyTracer, pid: int = LIVE_PID, process_name: str = "live"
) -> List[Dict]:
    """Complete events (plus name metadata) for all finished tracer spans."""
    events = [_metadata_event(pid, 0, "process_name", process_name)]
    threads = sorted({span.thread for span in tracer.spans})
    for tid in threads:
        events.append(
            _metadata_event(pid, tid, "thread_name", f"thread-{tid}")
        )
    for span in tracer.spans:
        if span.finish is None:
            continue
        events.append({
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": span.thread,
            "name": span.name,
            "cat": span.category,
            "args": dict(span.attrs),
        })
    return events


def chrome_events_from_sim_trace(
    trace: Trace, pid: int, process_name: str = "sim"
) -> List[Dict]:
    """Complete events for a simulator trace, one tid per resource."""
    events = [_metadata_event(pid, 0, "process_name", process_name)]
    tids = {resource: i for i, resource in enumerate(trace.resources())}
    for resource, tid in tids.items():
        events.append(_metadata_event(pid, tid, "thread_name", resource))
    for iv in trace.intervals:
        events.append({
            "ph": "X",
            "ts": iv.start * 1e6,
            "dur": iv.duration * 1e6,
            "pid": pid,
            "tid": tids[iv.resource],
            "name": iv.name,
            "cat": iv.category,
            "args": {"resource": iv.resource},
        })
    return events


def build_chrome_trace(
    tracer: Optional[AnyTracer] = None,
    sim_traces: Optional[Dict[str, Trace]] = None,
) -> Dict:
    """Assemble the unified ``trace_event`` document.

    Args:
        tracer: live spans for the pid-1 process row (optional).
        sim_traces: ``{process_name: Trace}`` simulator timelines, each on
            its own pid after the live row (optional).
    """
    events: List[Dict] = []
    if tracer is not None:
        events.extend(chrome_events_from_tracer(tracer))
    for offset, (name, trace) in enumerate(sorted((sim_traces or {}).items())):
        events.extend(
            chrome_events_from_sim_trace(trace, pid=LIVE_PID + 1 + offset,
                                         process_name=name)
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a loadable Chrome trace.

    Checks the container shape and that every event carries the required
    ``ph``/``ts``/``dur``/``pid``/``tid``/``name`` keys with sane types.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    required = ("ph", "ts", "dur", "pid", "tid", "name")
    for i, event in enumerate(events):
        missing = [k for k in required if k not in event]
        if missing:
            raise ValueError(f"event {i} missing keys {missing}: {event}")
        if event["ph"] == "X":
            if event["dur"] < 0:
                raise ValueError(f"event {i} has negative duration")
            if not isinstance(event["name"], str):
                raise ValueError(f"event {i} name is not a string")


def write_chrome_trace(
    path: Union[str, Path],
    tracer: Optional[AnyTracer] = None,
    sim_traces: Optional[Dict[str, Trace]] = None,
) -> Dict:
    """Write the unified Chrome trace to ``path`` and return the document."""
    document = build_chrome_trace(tracer, sim_traces)
    validate_chrome_trace(document)
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))
    return document


# ---- JSONL structured events --------------------------------------------


def events_jsonl_lines(
    tracer: Optional[AnyTracer] = None,
    metrics: Optional[AnyRegistry] = None,
) -> Iterator[str]:
    """Yield one JSON document per span and per metric instrument.

    The first line is a ``meta`` header carrying the schema version; span
    times are seconds relative to the tracer epoch.
    """
    yield json.dumps({"type": "meta",
                      "schema": JSONL_SCHEMA_VERSION,
                      "producer": "repro.telemetry"})
    if tracer is not None:
        for span in tracer.spans:
            yield json.dumps({
                "type": "span",
                "name": span.name,
                "cat": span.category,
                "start_s": span.start,
                "dur_s": span.duration,
                "thread": span.thread,
                "depth": span.depth,
                "attrs": dict(span.attrs),
            }, sort_keys=True)
    for kind, inst in (metrics if metrics is not None else ()):
        record = {
            "type": kind,
            "name": inst.name,
            "labels": dict(inst.labels),
        }
        if kind == "histogram":
            record.update(inst.summary())
        else:
            record["value"] = inst.value
        yield json.dumps(record, sort_keys=True)


def write_events_jsonl(
    path: Union[str, Path],
    tracer: Optional[AnyTracer] = None,
    metrics: Optional[AnyRegistry] = None,
) -> int:
    """Write the JSONL event stream to ``path``; returns the line count."""
    lines = list(events_jsonl_lines(tracer, metrics))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(lines)
