"""Thread-safe span tracing for the numeric training path.

The performance simulator has always produced timelines
(:mod:`repro.sim.trace`); this module gives the *real* numeric substrate
the same capability.  A :class:`Tracer` records nestable, wall-clock
spans::

    tracer = Tracer()
    with tracer.span("optimizer_step", category="optim", bucket=2):
        optimizer.step(grads)

Spans carry a name, a category, start/finish seconds relative to the
tracer's epoch, free-form attributes, the nesting depth at open time, and
a stable per-thread index — everything the Chrome ``trace_event`` exporter
(:mod:`repro.telemetry.export`) needs to lay them out as a timeline.

The default tracer everywhere in the codebase is :class:`NullTracer`,
whose :meth:`~NullTracer.span` hands back one shared no-op context
manager: instrumented hot paths pay a single attribute lookup and method
call when telemetry is off, and tier-1 timings are unaffected.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class Span:
    """One finished (or still-open) traced region.

    Attributes:
        name: what ran (e.g. ``"fwd_bwd"``).
        category: coarse grouping label (``"compute"``, ``"optim"``,
            ``"rollback"``, ...) — becomes the Chrome ``cat`` field.
        start: seconds since the tracer's epoch.
        finish: end time, or ``None`` while the span is open.
        depth: nesting depth at open time (0 = top level) on its thread.
        thread: stable small index of the opening thread (0 for the first
            thread the tracer ever saw, 1 for the next, ...).
        attrs: free-form key/value annotations.
    """

    name: str
    category: str
    start: float
    finish: Optional[float] = None
    depth: int = 0
    thread: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.finish is None:
            return 0.0
        return self.finish - self.start


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`.

    Entering stamps the start time and pushes the nesting depth; exiting
    stamps the finish time and publishes the completed span to the tracer.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute to the span while it is open."""
        self._span.attrs[key] = value

    def __enter__(self) -> "_SpanHandle":
        self._tracer._open(self._span)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._span)
        return False


class _NullSpan:
    """Shared do-nothing stand-in for :class:`_SpanHandle`."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default tracer: records nothing.

    Shares :class:`Tracer`'s interface so instrumented code never branches
    on whether telemetry is enabled.
    """

    enabled = False

    @property
    def spans(self) -> Tuple[Span, ...]:
        """Always empty."""
        return ()

    def span(self, name: str, category: str = "default", **attrs) -> _NullSpan:
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def add_close_hook(self, hook: Callable[[Span], None]) -> None:
        """Accepted for interface parity; never called (no spans close)."""

    def clear(self) -> None:
        """No state to clear."""


class Tracer:
    """Collects wall-clock spans across threads.

    Args:
        clock: monotonic time source in seconds (injectable for
            deterministic tests; defaults to :func:`time.perf_counter`).
            The first reading becomes the epoch — all span times are
            relative to it.
        on_close: optional callback invoked with each span as it
            finishes (on the closing thread, outside the tracer lock).
            More hooks can be attached with :meth:`add_close_hook`; the
            profiler and flight recorder both observe spans this way.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        on_close: Optional[Callable[[Span], None]] = None,
    ):
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()
        self._thread_index: Dict[int, int] = {}
        self._close_hooks: List[Callable[[Span], None]] = []
        if on_close is not None:
            self._close_hooks.append(on_close)

    def add_close_hook(self, hook: Callable[[Span], None]) -> None:
        """Attach another span-close observer (appended, never replaced)."""
        self._close_hooks.append(hook)

    # ---- recording ------------------------------------------------------

    def span(self, name: str, category: str = "default", **attrs) -> _SpanHandle:
        """Create a context manager that records one span.

        Args:
            name: span label.
            category: coarse grouping label.
            **attrs: initial attributes (more can be added with
                :meth:`_SpanHandle.set_attr`).
        """
        return _SpanHandle(
            self, Span(name=name, category=category, start=0.0, attrs=attrs)
        )

    def _thread(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            return self._thread_index.setdefault(ident, len(self._thread_index))

    def _open(self, span: Span) -> None:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        span.depth = depth
        span.thread = self._thread()
        span.start = self._clock() - self._epoch

    def _close(self, span: Span) -> None:
        span.finish = self._clock() - self._epoch
        self._local.depth = getattr(self._local, "depth", 1) - 1
        with self._lock:
            self._spans.append(span)
        for hook in self._close_hooks:
            hook(span)

    # ---- inspection -----------------------------------------------------

    @property
    def spans(self) -> Tuple[Span, ...]:
        """All finished spans, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def spans_named(self, name: str) -> List[Span]:
        """Finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        """Drop all recorded spans (thread indices are kept)."""
        with self._lock:
            self._spans.clear()
