"""Profile rendering: tables, measured-timeline export, sim cross-check.

:class:`~repro.telemetry.profiler.ProfileReport` is numbers; this module
turns it into the three consumable forms the ``repro profile`` command
ships:

* aligned text tables (via :mod:`repro.reporting`) for the terminal;
* a :class:`~repro.sim.trace.Trace` built from the measured phase
  segments, so the *real* step timeline rides the same schema — and the
  same Chrome-trace exporter — as the simulator's predicted one;
* a measured-vs-predicted comparison: both timelines reduced to per-
  category busy shares and differenced, the cross-check that catches a
  simulator whose cost model has drifted from the substrate it predicts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import Interval, Trace
from repro.telemetry.profiler import PHASES, ProfileReport

#: Resource name the measured timeline occupies in exported traces.
MEASURED_RESOURCE = "measured"

#: Measured phase -> simulator category.  ``stall`` and ``idle`` map to
#: ``None``: the simulator represents them as gaps, not intervals.
PHASE_TO_SIM_CATEGORY: Dict[str, Optional[str]] = {
    "forward": "compute",
    "backward": "compute",
    "grad_reduce": "collective",
    "optimizer": "optimizer",
    "validate": "optimizer",
    "rollback": "optimizer",
    "cast": "cast",
    "stall": None,
    # spill_wait is exposed disk latency — a gap, like any other stall;
    # checkpoint capture is optimizer-adjacent state movement.
    "spill_wait": None,
    "checkpoint": "optimizer",
    # Pipeline p2p hops ride the sim's ``pp_comm`` link intervals; the
    # schedule bubble is a gap on the stage resources, like any stall.
    "pp_send": "pp_comm",
    "pp_recv": "pp_comm",
    "pp_bubble": None,
    "idle": None,
}

PHASE_HEADERS = ("phase", "seconds", "share_pct", "per_step_ms")
OVERLAP_HEADERS = ("zero_step", "buckets", "achieved_ms", "serial_ms",
                   "bound_ms", "bubble_ms", "efficiency", "spill_io_ms",
                   "spill_wait_ms", "spill_hidden")
WORKER_HEADERS = ("worker", "chunks", "busy_ms", "queue_wait_ms",
                  "utilization_pct")
MEMORY_HEADERS = ("source", "peak_bytes", "peak_mib", "samples")
SIM_HEADERS = ("category", "measured_pct", "predicted_pct", "delta_pp")
SPILL_SIM_HEADERS = ("direction", "bytes", "measured_ms", "predicted_ms",
                     "delta_pct")
PIPELINE_SIM_HEADERS = ("quantity", "measured_pct", "predicted_pct",
                        "delta_pp")


def phase_rows(report: ProfileReport) -> List[Sequence]:
    """One row per phase with any time, in canonical order."""
    steps = max(report.step_count, 1)
    rows: List[Sequence] = []
    for phase in PHASES:
        sec = report.phase_totals.get(phase, 0.0)
        if sec <= 0.0 and phase != "idle":
            continue
        rows.append([
            phase,
            sec,
            report.phase_share(phase) * 100.0,
            sec / steps * 1e3,
        ])
    rows.append([
        "total", report.wall_seconds, 100.0 if report.wall_seconds else 0.0,
        report.wall_seconds / steps * 1e3,
    ])
    return rows


def overlap_rows(report: ProfileReport) -> List[Sequence]:
    """One row per pipelined ``zero_step`` audit."""
    return [
        [i, a.buckets, a.achieved_seconds * 1e3, a.serial_seconds * 1e3,
         a.lower_bound_seconds * 1e3, a.bubble_seconds * 1e3, a.efficiency,
         (a.spill_read_seconds + a.spill_write_seconds) * 1e3,
         a.spill_wait_seconds * 1e3,
         ("-" if a.spill_overlap_efficiency is None
          else a.spill_overlap_efficiency)]
        for i, a in enumerate(report.overlap)
    ]


def spill_sim_rows(
    bytes_read: int,
    bytes_written: int,
    read_seconds: float,
    write_seconds: float,
) -> List[Sequence]:
    """Measured spill bandwidth vs the simulator's NVMe link model.

    The predicted side is the same :class:`BandwidthModel` over the
    :data:`~repro.hardware.registry.NVME` link that
    ``systems/zero_infinity.py`` charges for optimizer-state traffic, so
    a drifting disk model shows up as a growing delta here — the spill
    counterpart of :func:`sim_comparison_rows`.
    """
    from repro.hardware.bandwidth import BandwidthModel
    from repro.hardware.registry import NVME

    link = BandwidthModel(NVME)
    rows: List[Sequence] = []
    for direction, nbytes, measured in (
        ("read", bytes_read, read_seconds),
        ("write", bytes_written, write_seconds),
    ):
        if nbytes <= 0:
            continue
        predicted = link.transfer_time(int(nbytes))
        delta = (
            (measured - predicted) / predicted * 100.0 if predicted else 0.0
        )
        rows.append(
            [direction, int(nbytes), measured * 1e3, predicted * 1e3, delta]
        )
    return rows


def pipeline_sim_rows(
    measured_bubble: float,
    predicted_bubble: float,
    n_stages: int,
    n_microbatches: int,
) -> List[Sequence]:
    """Measured vs predicted 1F1B bubble fraction, in pct points.

    The measured side replays the substrate's per-op wall durations
    through :func:`~repro.sim.engine.build_1f1b_tasks`
    (:meth:`~repro.parallel.pipeline.PipelinedTransformer.measured_bubble_fraction`);
    the predicted side is the same task graph under the simulator's
    modeled stage times.  The ideal ``(p-1)/(m+p-1)`` row anchors both —
    the pipeline counterpart of :func:`spill_sim_rows`.
    """
    from repro.sim.engine import ideal_1f1b_bubble

    ideal = ideal_1f1b_bubble(n_stages, n_microbatches)
    return [
        ["bubble_fraction", measured_bubble * 100.0,
         predicted_bubble * 100.0,
         (measured_bubble - predicted_bubble) * 100.0],
        [f"ideal (p={n_stages}, m={n_microbatches})",
         measured_bubble * 100.0, ideal * 100.0,
         (measured_bubble - ideal) * 100.0],
    ]


def worker_rows(report: ProfileReport) -> List[Sequence]:
    """One row per KernelPool worker, plus a straggler summary row."""
    rows: List[Sequence] = [
        [w.worker, w.chunks, w.busy_seconds * 1e3,
         w.queue_wait_seconds * 1e3, w.utilization * 100.0]
        for w in report.workers
    ]
    if len(report.workers) > 1:
        busys = [w.busy_seconds for w in report.workers]
        mean = sum(busys) / len(busys)
        straggler = max(busys) / mean if mean > 0 else 1.0
        rows.append(["straggler(max/mean)", "", straggler, "", ""])
    return rows


def memory_rows(report: ProfileReport) -> List[Sequence]:
    """One row per watched memory source's high-water mark."""
    return [
        [m.name, int(m.peak_bytes), m.peak_bytes / (1 << 20), m.samples]
        for m in report.watermarks
    ]


def measured_trace(report: ProfileReport) -> Trace:
    """The measured step timeline in the simulator's Trace schema.

    Each attributed segment of each step becomes one interval on the
    single serial :data:`MEASURED_RESOURCE` stream (``idle`` segments are
    gaps, matching the simulator's convention).  Segments partition each
    step window and steps never overlap, so the trace always passes
    :meth:`~repro.sim.trace.Trace.validate`.
    """
    trace = Trace()
    for step in report.steps:
        for seg in step.segments:
            if seg.phase == "idle":
                continue
            sim_cat = PHASE_TO_SIM_CATEGORY.get(seg.phase)
            trace.record(Interval(
                resource=MEASURED_RESOURCE,
                name=seg.phase,
                category=sim_cat if sim_cat is not None else seg.phase,
                start=seg.start,
                finish=seg.finish,
            ))
    return trace


def _category_shares(
    trace: Trace, resource: str, window: Optional[Tuple[float, float]]
) -> Dict[str, float]:
    """Busy share per category over the window (fractions of the window)."""
    if window is None:
        window = (0.0, trace.makespan)
    t0, t1 = window
    span = t1 - t0
    if span <= 0:
        return {}
    shares: Dict[str, float] = {}
    for iv in trace.intervals_on(resource):
        lo, hi = max(iv.start, t0), min(iv.finish, t1)
        if hi > lo:
            shares[iv.category] = shares.get(iv.category, 0.0) + (hi - lo) / span
    return shares


def sim_comparison_rows(
    report: ProfileReport,
    sim_trace: Trace,
    sim_window: Optional[Tuple[float, float]] = None,
    sim_resource: str = "gpu",
) -> List[Sequence]:
    """Measured vs predicted per-category busy shares, in pct points.

    The measured side is the profile's phase totals folded through
    :data:`PHASE_TO_SIM_CATEGORY`; the predicted side is the simulator
    trace's category shares on ``sim_resource`` (plus every other sim
    resource's optimizer/collective work folded in via the same category,
    when it appears on the GPU row — the shares compare *shape*, not
    absolute seconds, since sim time and wall time use different units).
    An ``idle`` row compares the measured idle+stall share against the
    simulated idle fraction.
    """
    wall = report.wall_seconds
    measured: Dict[str, float] = {}
    for phase, sec in report.phase_totals.items():
        cat = PHASE_TO_SIM_CATEGORY.get(phase)
        if cat is None:
            continue
        measured[cat] = measured.get(cat, 0.0) + (sec / wall if wall else 0.0)
    # Predicted: aggregate category shares across every sim resource the
    # categories appear on, normalized by the window — the sim splits one
    # step across gpu/cpu/transfer streams while the measured substrate
    # is one thread, so per-category *shape* is the comparable quantity.
    predicted: Dict[str, float] = {}
    for resource in sim_trace.resources():
        for cat, share in _category_shares(
            sim_trace, resource, sim_window
        ).items():
            predicted[cat] = predicted.get(cat, 0.0) + share
    ptotal = sum(predicted.values())
    if ptotal > 0:
        predicted = {k: v / ptotal for k, v in predicted.items()}
    mtotal = sum(measured.values())
    if mtotal > 0:
        measured = {k: v / mtotal for k, v in measured.items()}
    rows: List[Sequence] = []
    for cat in sorted(set(measured) | set(predicted)):
        m = measured.get(cat, 0.0) * 100.0
        p = predicted.get(cat, 0.0) * 100.0
        rows.append([cat, m, p, m - p])
    # Idle: measured residual vs the sim's GPU idle fraction.
    m_idle = (
        (report.phase_totals.get("idle", 0.0)
         + report.phase_totals.get("stall", 0.0)) / wall * 100.0
        if wall else 0.0
    )
    p_idle = sim_trace.idle_fraction(sim_resource, sim_window) * 100.0
    rows.append(["idle(vs sim gpu)", m_idle, p_idle, m_idle - p_idle])
    return rows
