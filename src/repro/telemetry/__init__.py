"""Unified telemetry: spans, metrics, and trace export.

The paper's headline numbers are observability numbers — GPU idle
fractions (Figs. 4/15), effective TFLOPS (Fig. 10), rollback rates
(Fig. 14) — and this package is the measurement layer that produces them
from *running* code rather than from the analytic simulator alone.

Three pieces:

* :class:`Tracer` — thread-safe, nestable wall-clock spans
  (``with tracer.span("optimizer_step", category="optim"):``);
* :class:`MetricsRegistry` — labeled counters, gauges, and histograms
  with exact p50/p95/p99 summaries;
* :mod:`repro.telemetry.export` — a JSONL structured-event writer and a
  Chrome ``trace_event`` exporter that unifies live tracer spans and
  simulator :class:`~repro.sim.trace.Trace` timelines in one
  Perfetto-loadable file.

The :class:`Telemetry` facade bundles a tracer and a registry;
:data:`NULL_TELEMETRY` is the disabled singleton every instrumented
component defaults to, making telemetry strictly opt-in and no-op-cheap
when off::

    from repro.telemetry import Telemetry
    tel = Telemetry()
    trainer = STVTrainer(telemetry=tel)
    trainer.run(100)
    print(format_table("metrics", SUMMARY_HEADERS, tel.metrics.summary_rows()))
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.metrics import (
    SUMMARY_HEADERS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.tracer import NullTracer, Span, Tracer


class Telemetry:
    """A tracer plus a metrics registry, enabled or permanently off.

    Args:
        tracer: span recorder (fresh :class:`Tracer` if omitted and
            enabled; :class:`NullTracer` if disabled).
        metrics: instrument registry (same convention).
        enabled: ``False`` builds the no-op twin of everything.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        if enabled:
            self.tracer = tracer if tracer is not None else Tracer()
            self.metrics = metrics if metrics is not None else MetricsRegistry()
        else:
            self.tracer = tracer if tracer is not None else NullTracer()
            self.metrics = (
                metrics if metrics is not None else NullMetricsRegistry()
            )


#: The default for every instrumented component: records nothing, costs
#: one method call per would-be span or metric update.
NULL_TELEMETRY = Telemetry(enabled=False)


def __getattr__(name: str):
    # The profiler/flight/report layers sit above Telemetry and are
    # re-exported lazily: importing them eagerly would be a cycle (they
    # import this package) and a cost every NULL_TELEMETRY user pays.
    if name in ("StepProfiler", "ProfileReport", "StepBreakdown",
                "OverlapAudit", "WorkerUtilization", "PHASES",
                "profiler_overhead", "OverheadResult"):
        from repro.telemetry import profiler
        return getattr(profiler, name)
    if name == "FlightRecorder":
        from repro.telemetry.flight import FlightRecorder
        return FlightRecorder
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Tracer",
    "NullTracer",
    "Span",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SUMMARY_HEADERS",
    "StepProfiler",
    "ProfileReport",
    "profiler_overhead",
    "FlightRecorder",
]
