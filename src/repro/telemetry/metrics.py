"""Labeled counters, gauges, and histograms with percentile summaries.

A :class:`MetricsRegistry` is the single sink for numeric telemetry:
instruments are created on first use and identified by ``(kind, name,
labels)``, so ``registry.counter("collective_bytes_total", op="all_gather")``
always returns the same :class:`Counter`.  Histograms answer the paper's
distributional questions (p50/p95/p99 of per-iteration losses, gradient
norms, span durations) with exact percentiles over all observations.

:class:`NullMetricsRegistry` is the zero-cost disabled twin: every lookup
returns a shared no-op instrument, so instrumented hot paths stay cheap
when telemetry is off.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

Labels = Tuple[Tuple[str, str], ...]

#: Column headers matching :meth:`MetricsRegistry.summary_rows` (feed both
#: straight into :func:`repro.reporting.format_table`).
SUMMARY_HEADERS = ("metric", "labels", "kind", "count", "value",
                   "p50", "p95", "p99")


def _labels_key(labels: Dict[str, Any]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _labels_text(labels: Labels) -> str:
    return ",".join(f"{k}={v}" for k, v in labels) if labels else "-"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can move in both directions (last write wins)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Exact-percentile distribution of observed values.

    Observations are kept in full (the workloads here record thousands of
    samples, not billions), so percentiles are exact order statistics with
    linear interpolation between adjacent ranks.
    """

    __slots__ = ("name", "labels", "_values", "_lock")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        with self._lock:
            if not self._values:
                return 0.0
            return sum(self._values) / len(self._values)

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0-100), ``None`` with no samples.

        The endpoints never interpolate: ``p=0`` is exactly the minimum
        and ``p=100`` exactly the maximum.  Interpolating there is not
        just redundant — with an infinite endpoint (an ``inf`` duration,
        say) the lerp evaluates ``inf - inf`` and returns NaN.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._values:
                return None
            ordered = sorted(self._values)
        if p <= 0.0:
            return ordered[0]
        if p >= 100.0:
            return ordered[-1]
        rank = (len(ordered) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        # Clamped lerp: a*(1-f) + b*f can drift one ulp outside [a, b] and
        # break p50 <= p95 <= p99 (the property tests check exactly this).
        a, b = ordered[lo], ordered[hi]
        return min(max(a + (b - a) * frac, a), b)

    def summary(self) -> Dict[str, Optional[float]]:
        """count/mean/min/max and the p50/p95/p99 order statistics."""
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0, "mean": None, "min": None, "max": None,
                    "p50": None, "p95": None, "p99": None}
        summary: Dict[str, Optional[float]] = {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }
        for p in (50, 95, 99):
            summary[f"p{p}"] = self.percentile(p)
        return summary


class MetricsRegistry:
    """Get-or-create home for all instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, str, Labels], Any] = {}

    def _get(self, kind: str, cls, name: str, labels: Dict[str, Any]):
        key = (kind, name, _labels_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[2])
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        return self._get("histogram", Histogram, name, labels)

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        """Yield ``(kind, instrument)`` sorted by kind, name, labels."""
        with self._lock:
            items = sorted(self._instruments.items(), key=lambda kv: kv[0])
        for (kind, _, _), instrument in items:
            yield kind, instrument

    def __len__(self) -> int:
        return len(self._instruments)

    def summary_rows(self) -> List[Sequence]:
        """One table row per instrument, matching :data:`SUMMARY_HEADERS`."""

        def opt(value: Optional[float]):
            # Same guard as Histogram.percentile: a sample-free (or
            # otherwise undefined) statistic renders as an empty cell,
            # never as an interpolated or formatted None.
            return value if value is not None else ""

        rows: List[Sequence] = []
        for kind, inst in self:
            labels = _labels_text(inst.labels)
            if kind == "counter" or kind == "gauge":
                rows.append([inst.name, labels, kind, "", inst.value,
                             "", "", ""])
            else:
                s = inst.summary()
                rows.append([inst.name, labels, kind, s["count"],
                             opt(s["mean"]), opt(s["p50"]), opt(s["p95"]),
                             opt(s["p99"])])
        return rows


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    labels: Labels = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every lookup returns the shared no-op."""

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def summary_rows(self) -> List[Sequence]:
        return []
